package countq

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"
	"time"
)

// Entry is one structure configuration in a campaign: a counter spec, a
// queue spec, or both (a mixed workload). Mixed entries (both specs set)
// must share their shape with every other entry — the mix fraction forces
// the per-phase op split, and a diverging split would break the
// identical-phase-sequence guarantee the comparison rests on. Pure
// entries may differ in kind: a counter-only entry compared against a
// queue-only entry runs the same phase sequence, budgets and arrival
// schedule with its own operation kind, which is precisely the paper's
// counting-versus-queuing question (latency ratios across kinds are
// omitted; ns/op and throughput ratios compare the coordination cost).
type Entry struct {
	Counter string `json:"counter,omitempty"`
	Queue   string `json:"queue,omitempty"`
	// Goroutines, Batch and Inflight, when > 0, override the base
	// workload's values in every phase for this entry alone — declared
	// asymmetry for comparisons like "batched sharded vs unbatched atomic
	// at equal ops" (Batch: 1 forces the single-Inc path even when the
	// base batches; goroutine ramps are flattened to the override). An
	// overridden entry no longer runs the byte-identical phase shapes the
	// plain comparison guarantees; its deltas read as "this configuration
	// vs the baseline's", which is exactly what was asked.
	Goroutines int `json:"goroutines,omitempty"`
	Batch      int `json:"batch,omitempty"`
	Inflight   int `json:"inflight,omitempty"`
}

// Label is the entry's display and matching key: the counter spec, the
// queue spec, or "counter+queue" for a mixed entry, with any per-entry
// overrides appended ("atomic@g=4@batch=64").
func (e Entry) Label() string {
	var label string
	switch {
	case e.Counter != "" && e.Queue != "":
		label = e.Counter + "+" + e.Queue
	case e.Counter != "":
		label = e.Counter
	default:
		label = e.Queue
	}
	if e.Goroutines > 0 {
		label += fmt.Sprintf("@g=%d", e.Goroutines)
	}
	if e.Batch > 0 {
		label += fmt.Sprintf("@batch=%d", e.Batch)
	}
	if e.Inflight > 0 {
		label += fmt.Sprintf("@inflight=%d", e.Inflight)
	}
	return label
}

// applyOverrides rewrites a copy of the shared phase sequence with the
// entry's declared asymmetries.
func (e Entry) applyOverrides(phases []Phase) []Phase {
	out := append([]Phase(nil), phases...)
	for i := range out {
		if e.Goroutines > 0 {
			out[i].Goroutines = e.Goroutines
		}
		if e.Batch > 0 {
			out[i].Batch = e.Batch
		}
		if e.Inflight > 0 {
			out[i].Inflight = e.Inflight
		}
	}
	return out
}

// Campaign runs one scenario over a set of structure specs — the paper's
// comparative claim ("counting is harder than queuing", "scalable beats
// centralized under the right load") as a single call. Every entry runs
// under a byte-identical phase sequence: the scenario is expanded once
// against the base shape, and the shared seed means every entry draws the
// same per-worker op and arrival schedule. Each entry's run is validated
// independently (counts gap-free, predecessors one total order), and the
// Comparison reports per-structure Metrics plus per-phase and aggregate
// deltas against the declared baseline entry.
type Campaign struct {
	// Base is the shared workload shape: scenario, goroutines, ops or
	// duration budget, mix, batch, sampling, arrival, seed. Its Counter
	// and Queue fields must be empty — structures come from Entries.
	Base Workload
	// Entries are the structure configurations under comparison, all of
	// the same kind shape. Labels must be distinct.
	Entries []Entry
	// Baseline indexes the entry the deltas are computed against
	// (default 0, the first entry).
	Baseline int
	// Name optionally labels the campaign in the Comparison — useful when
	// several campaigns land in one file (the -benchjson sweep keys its
	// records this way).
	Name string
}

// Delta is one phase's (or the aggregate's) ratios against the baseline
// entry's same phase. Ratios are this-entry over baseline: NsPerOp, P50
// and P99 below 1 mean faster than the baseline, Throughput and Fairness
// above 1 mean better. Latency ratios compare counter latency when both
// runs have it, queue latency otherwise; a ratio whose either side is
// missing or zero is omitted as 0.
type Delta struct {
	Phase           string  `json:"phase"`
	NsPerOpRatio    float64 `json:"ns_per_op_ratio,omitempty"`
	ThroughputRatio float64 `json:"throughput_ratio,omitempty"`
	P50Ratio        float64 `json:"p50_ratio,omitempty"`
	P99Ratio        float64 `json:"p99_ratio,omitempty"`
	FairnessRatio   float64 `json:"fairness_ratio,omitempty"`
	// AllocsRatio and LivePeakRatio compare the memory cost of counting:
	// heap allocations per operation and the peak live heap while the
	// phase ran. Below 1 means this entry allocates (or retains) less
	// than the baseline. An entry that allocates nothing per op has no
	// meaningful ratio and is omitted as 0, like the latency ratios.
	AllocsRatio   float64 `json:"allocs_ratio,omitempty"`
	LivePeakRatio float64 `json:"live_peak_ratio,omitempty"`
}

// StructureResult is one entry's outcome: its full Metrics plus the
// deltas against the baseline entry (self-ratios of 1 on the baseline
// itself, so consumers need no special case).
type StructureResult struct {
	Label    string   `json:"label"`
	Counter  string   `json:"counter,omitempty"`
	Queue    string   `json:"queue,omitempty"`
	Baseline bool     `json:"baseline,omitempty"`
	Metrics  *Metrics `json:"metrics"`
	// PhaseDeltas has one Delta per phase, in phase order (warmup phases
	// included); AggregateDelta folds the measured phases.
	PhaseDeltas    []Delta `json:"phase_deltas"`
	AggregateDelta Delta   `json:"aggregate_delta"`
}

// Comparison is a campaign's outcome: per-structure Metrics under the
// identical phase sequence, plus deltas against the baseline entry. It
// marshals to JSON as-is, and to CSV and Markdown via MarshalCSV and
// MarshalMarkdown for plots and reports.
type Comparison struct {
	Name       string            `json:"name,omitempty"`
	Scenario   string            `json:"scenario,omitempty"`
	Goroutines int               `json:"goroutines"`
	Ops        int               `json:"ops,omitempty"`
	Duration   time.Duration     `json:"duration_ns,omitempty"`
	Seed       int64             `json:"seed"`
	Baseline   string            `json:"baseline"`
	Results    []StructureResult `json:"results"`
}

// Run executes the campaign: one validated run per entry over the shared
// phase sequence, then the cross-structure deltas.
func (c Campaign) Run() (*Comparison, error) {
	if len(c.Entries) == 0 {
		return nil, fmt.Errorf("countq: campaign has no entries")
	}
	if c.Base.Counter != "" || c.Base.Queue != "" {
		return nil, fmt.Errorf("countq: campaign base names structures (%q, %q); structures come from Entries", c.Base.Counter, c.Base.Queue)
	}
	if c.Baseline < 0 || c.Baseline >= len(c.Entries) {
		return nil, fmt.Errorf("countq: campaign baseline index %d outside its %d entries", c.Baseline, len(c.Entries))
	}
	seen := make(map[string]bool, len(c.Entries))
	for i, e := range c.Entries {
		if e.Counter == "" && e.Queue == "" {
			return nil, fmt.Errorf("countq: campaign entry %d names neither a counter nor a queue", i)
		}
		mixed := e.Counter != "" && e.Queue != ""
		firstMixed := c.Entries[0].Counter != "" && c.Entries[0].Queue != ""
		if (mixed || firstMixed) && ((e.Counter == "") != (c.Entries[0].Counter == "") || (e.Queue == "") != (c.Entries[0].Queue == "")) {
			return nil, fmt.Errorf("countq: campaign entry %q has a different kind shape than mixed entry %q; a diverging mix would change the per-phase op split and break the identical-phase-sequence comparison (pure counter and pure queue entries may be compared cross-kind)", e.Label(), c.Entries[0].Label())
		}
		if seen[e.Label()] {
			return nil, fmt.Errorf("countq: campaign lists entry %q twice", e.Label())
		}
		seen[e.Label()] = true
	}

	// Expand the scenario once, against the base shape with the first
	// entry's structures (expansion may legitimately require both kinds,
	// as mixshift does). Every entry then runs its own copy of the same
	// phases, under the same seed — identical op and arrival schedules.
	base := c.Base
	base.Counter, base.Queue = c.Entries[0].Counter, c.Entries[0].Queue
	base = base.withDefaults()
	scenarioSpec := ""
	var phases []Phase
	if c.Base.Scenario != "" {
		sc, err := ExpandScenario(c.Base.Scenario, base)
		if err != nil {
			return nil, err
		}
		scenarioSpec, phases = sc.Spec, sc.Phases
	} else {
		phases = []Phase{basePhase(base, "steady")}
		phases[0].Ops, phases[0].Duration = base.Ops, base.Duration
	}

	cmp := &Comparison{
		Name:       c.Name,
		Scenario:   scenarioSpec,
		Goroutines: base.Goroutines,
		Ops:        base.Ops,
		Duration:   base.Duration,
		Seed:       base.Seed,
		Baseline:   c.Entries[c.Baseline].Label(),
	}
	for _, e := range c.Entries {
		w := base
		w.Counter, w.Queue = e.Counter, e.Queue
		m, err := runSpec(w, scenarioSpec, e.applyOverrides(phases))
		if err != nil {
			return nil, fmt.Errorf("countq: campaign entry %q: %w", e.Label(), err)
		}
		cmp.Results = append(cmp.Results, StructureResult{
			Label:   e.Label(),
			Counter: e.Counter,
			Queue:   e.Queue,
			Metrics: m,
		})
	}
	bm := cmp.Results[c.Baseline].Metrics
	for i := range cmp.Results {
		r := &cmp.Results[i]
		r.Baseline = i == c.Baseline
		for j := range r.Metrics.Phases {
			p, bp := &r.Metrics.Phases[j], &bm.Phases[j]
			r.PhaseDeltas = append(r.PhaseDeltas, Delta{
				Phase:           p.Name,
				NsPerOpRatio:    ratio(p.NsPerOp(), bp.NsPerOp()),
				ThroughputRatio: ratio(p.OpsPerSec(), bp.OpsPerSec()),
				P50Ratio:        latRatio(p.CounterLat, bp.CounterLat, p.QueueLat, bp.QueueLat, func(l *LatencyStats) float64 { return l.P50Ns }),
				P99Ratio:        latRatio(p.CounterLat, bp.CounterLat, p.QueueLat, bp.QueueLat, func(l *LatencyStats) float64 { return l.P99Ns }),
				FairnessRatio:   ratio(p.Fairness, bp.Fairness),
				AllocsRatio:     ratio(p.AllocsPerOp, bp.AllocsPerOp),
				LivePeakRatio:   ratio(float64(p.LivePeakBytes), float64(bp.LivePeakBytes)),
			})
		}
		a, ba := &r.Metrics.Aggregate, &bm.Aggregate
		r.AggregateDelta = Delta{
			Phase:           "aggregate",
			NsPerOpRatio:    ratio(a.NsPerOp(), ba.NsPerOp()),
			ThroughputRatio: ratio(a.OpsPerSec(), ba.OpsPerSec()),
			P50Ratio:        latRatio(a.CounterLat, ba.CounterLat, a.QueueLat, ba.QueueLat, func(l *LatencyStats) float64 { return l.P50Ns }),
			P99Ratio:        latRatio(a.CounterLat, ba.CounterLat, a.QueueLat, ba.QueueLat, func(l *LatencyStats) float64 { return l.P99Ns }),
			FairnessRatio:   ratio(a.Fairness, ba.Fairness),
			AllocsRatio:     ratio(a.AllocsPerOp, ba.AllocsPerOp),
			LivePeakRatio:   ratio(float64(a.LivePeakBytes), float64(ba.LivePeakBytes)),
		}
	}
	return cmp, nil
}

// ratio is n/d, or 0 (omitted) when either side is non-positive — a
// missing measurement must not masquerade as a delta.
func ratio(n, d float64) float64 {
	if n <= 0 || d <= 0 {
		return 0
	}
	return n / d
}

// latRatio picks the op kind both runs measured — counter first, the
// paper's expensive side — and returns the chosen quantile's ratio.
func latRatio(c, bc, q, bq *LatencyStats, pick func(*LatencyStats) float64) float64 {
	if c != nil && bc != nil {
		return ratio(pick(c), pick(bc))
	}
	if q != nil && bq != nil {
		return ratio(pick(q), pick(bq))
	}
	return 0
}

// csvHeader is the column set MarshalCSV emits: one row per structure per
// phase plus an aggregate row per structure, identical columns throughout
// so the file loads straight into a dataframe.
var csvHeader = []string{
	"structure", "phase", "warmup", "goroutines", "mix", "arrival", "batch", "inflight",
	"ops", "elapsed_ns", "ns_per_op", "ops_per_sec",
	"counter_p50_ns", "counter_p99_ns", "queue_p50_ns", "queue_p99_ns",
	"counter_corr_p50_ns", "counter_corr_p99_ns", "queue_corr_p50_ns", "queue_corr_p99_ns",
	"fairness", "allocs_per_op", "alloc_bytes_per_op", "live_peak_bytes",
	"ns_per_op_ratio", "throughput_ratio", "p50_ratio", "p99_ratio", "fairness_ratio",
	"allocs_ratio", "live_peak_ratio",
}

// MarshalCSV renders the comparison as CSV: the header above, then one row
// per structure per phase (warmup flagged, delta ratios against the
// baseline) and one aggregate row per structure.
func (c *Comparison) MarshalCSV() ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(csvHeader); err != nil {
		return nil, err
	}
	for i := range c.Results {
		r := &c.Results[i]
		for j := range r.Metrics.Phases {
			p := &r.Metrics.Phases[j]
			d := r.PhaseDeltas[j]
			row := []string{
				r.Label, p.Name, strconv.FormatBool(p.Warmup),
				strconv.Itoa(p.Goroutines), num(p.Mix), p.Arrival, strconv.Itoa(p.Batch), strconv.Itoa(p.Inflight),
				strconv.Itoa(p.Ops), strconv.FormatInt(p.Elapsed.Nanoseconds(), 10),
				num(p.NsPerOp()), num(p.OpsPerSec()),
				latNum(p.CounterLat, func(l *LatencyStats) float64 { return l.P50Ns }),
				latNum(p.CounterLat, func(l *LatencyStats) float64 { return l.P99Ns }),
				latNum(p.QueueLat, func(l *LatencyStats) float64 { return l.P50Ns }),
				latNum(p.QueueLat, func(l *LatencyStats) float64 { return l.P99Ns }),
				latNum(p.CounterCorr, func(l *LatencyStats) float64 { return l.P50Ns }),
				latNum(p.CounterCorr, func(l *LatencyStats) float64 { return l.P99Ns }),
				latNum(p.QueueCorr, func(l *LatencyStats) float64 { return l.P50Ns }),
				latNum(p.QueueCorr, func(l *LatencyStats) float64 { return l.P99Ns }),
				num(p.Fairness),
				num(p.AllocsPerOp), num(p.AllocBytesPerOp), strconv.FormatInt(p.LivePeakBytes, 10),
				ratioNum(d.NsPerOpRatio), ratioNum(d.ThroughputRatio),
				ratioNum(d.P50Ratio), ratioNum(d.P99Ratio), ratioNum(d.FairnessRatio),
				ratioNum(d.AllocsRatio), ratioNum(d.LivePeakRatio),
			}
			if err := w.Write(row); err != nil {
				return nil, err
			}
		}
		a := &r.Metrics.Aggregate
		d := r.AggregateDelta
		row := []string{
			r.Label, "aggregate", "false",
			strconv.Itoa(r.Metrics.Goroutines), "", "", "", "",
			strconv.Itoa(a.Ops), strconv.FormatInt(a.Elapsed.Nanoseconds(), 10),
			num(a.NsPerOp()), num(a.OpsPerSec()),
			latNum(a.CounterLat, func(l *LatencyStats) float64 { return l.P50Ns }),
			latNum(a.CounterLat, func(l *LatencyStats) float64 { return l.P99Ns }),
			latNum(a.QueueLat, func(l *LatencyStats) float64 { return l.P50Ns }),
			latNum(a.QueueLat, func(l *LatencyStats) float64 { return l.P99Ns }),
			latNum(a.CounterCorr, func(l *LatencyStats) float64 { return l.P50Ns }),
			latNum(a.CounterCorr, func(l *LatencyStats) float64 { return l.P99Ns }),
			latNum(a.QueueCorr, func(l *LatencyStats) float64 { return l.P50Ns }),
			latNum(a.QueueCorr, func(l *LatencyStats) float64 { return l.P99Ns }),
			num(a.Fairness),
			num(a.AllocsPerOp), num(a.AllocBytesPerOp), strconv.FormatInt(a.LivePeakBytes, 10),
			ratioNum(d.NsPerOpRatio), ratioNum(d.ThroughputRatio),
			ratioNum(d.P50Ratio), ratioNum(d.P99Ratio), ratioNum(d.FairnessRatio),
			ratioNum(d.AllocsRatio), ratioNum(d.LivePeakRatio),
		}
		if err := w.Write(row); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MarshalMarkdown renders the comparison as a GitHub-flavoured Markdown
// table: per-phase rows with the delta columns, aggregate rows, and a
// footnote explaining the baseline and the single-core fairness caveat.
func (c *Comparison) MarshalMarkdown() ([]byte, error) {
	var buf bytes.Buffer
	head := "## campaign"
	if c.Name != "" {
		head += " " + c.Name
	}
	fmt.Fprintf(&buf, "%s\n\n", head)
	fmt.Fprintf(&buf, "scenario `%s` · goroutines %d · seed %d · baseline `%s`\n\n", orDash(c.Scenario), c.Goroutines, c.Seed, c.Baseline)
	fmt.Fprintln(&buf, "| structure | phase | ops | ns/op | Mops/s | p50 ns | p99 ns | corr p50 | corr p99 | fairness | allocs/op | live peak | Δns/op | Δp99 | Δtput | Δalloc |")
	fmt.Fprintln(&buf, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
	latPair := func(c, q *LatencyStats) (string, string) {
		lat := PickLatency(c, q)
		if lat == nil {
			return "–", "–"
		}
		return fmt.Sprintf("%.0f", lat.P50Ns), fmt.Sprintf("%.0f", lat.P99Ns)
	}
	row := func(label, phase string, warm bool, ops int, nsPerOp, opsPerSec float64, cl, ql, cc, qc *LatencyStats, fair, allocs float64, peak int64, d Delta) {
		if warm {
			phase += "\\*"
		}
		p50, p99 := latPair(cl, ql)
		cp50, cp99 := latPair(cc, qc)
		fmt.Fprintf(&buf, "| %s | %s | %d | %.1f | %.2f | %s | %s | %s | %s | %.2f | %.2f | %s | %s | %s | %s | %s |\n",
			label, phase, ops, nsPerOp, opsPerSec/1e6, p50, p99, cp50, cp99, fair,
			allocs, mdBytes(peak),
			mdRatio(d.NsPerOpRatio), mdRatio(d.P99Ratio), mdRatio(d.ThroughputRatio), mdRatio(d.AllocsRatio))
	}
	for i := range c.Results {
		r := &c.Results[i]
		label := "`" + r.Label + "`"
		if r.Baseline {
			label += " (baseline)"
		}
		for j := range r.Metrics.Phases {
			p := &r.Metrics.Phases[j]
			row(label, p.Name, p.Warmup, p.Ops, p.NsPerOp(), p.OpsPerSec(), p.CounterLat, p.QueueLat, p.CounterCorr, p.QueueCorr, p.Fairness, p.AllocsPerOp, p.LivePeakBytes, r.PhaseDeltas[j])
		}
		a := &r.Metrics.Aggregate
		row(label, "**aggregate**", false, a.Ops, a.NsPerOp(), a.OpsPerSec(), a.CounterLat, a.QueueLat, a.CounterCorr, a.QueueCorr, a.Fairness, a.AllocsPerOp, a.LivePeakBytes, r.AggregateDelta)
	}
	fmt.Fprintln(&buf, "\nΔ columns are ratios against the baseline's same phase (Δns/op, Δp99 and Δalloc below 1"+
		" are better for this entry, Δtput above 1 is higher throughput); \\* marks warmup phases, excluded from the"+
		" aggregate. allocs/op is heap allocations per operation over the whole phase (workers preallocate before the"+
		" start barrier, so steady phases of allocation-free structures report 0.00 and Δalloc is omitted as –);"+
		" live peak is the highest sampled live-heap size while the phase ran."+
		" corr p50/p99 are coordinated-omission-corrected quantiles (completion against the intended start of"+
		" the arrival schedule), recorded under open-loop arrivals and async pipelining — '–' for plain closed"+
		" loops, where they would equal the service-time quantiles."+
		" Fairness is min/max worker ops: on a single-core host (GOMAXPROCS=1) closed-loop phases legitimately"+
		" report ≈ 0 — one worker drains the shared pool per timeslice — so compare fairness only at GOMAXPROCS > 1"+
		" (or use the fairshare arrival pattern, whose rotating grant is scheduler-independent).")
	return buf.Bytes(), nil
}

// num renders a float compactly for CSV (6 significant digits; zero stays
// "0" — only the ratio columns use empty cells, for "not measured").
func num(v float64) string {
	if v == 0 {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// ratioNum renders a delta ratio, empty when omitted (0).
func ratioNum(v float64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// latNum renders one quantile of a possibly-absent latency record.
func latNum(l *LatencyStats, pick func(*LatencyStats) float64) string {
	if l == nil {
		return ""
	}
	return strconv.FormatFloat(pick(l), 'f', 1, 64)
}

// mdRatio renders a ratio for the Markdown table ("–" when omitted).
func mdRatio(v float64) string {
	if v == 0 {
		return "–"
	}
	return fmt.Sprintf("%.2f×", v)
}

// mdBytes renders a byte count human-readably for the Markdown table.
func mdBytes(b int64) string {
	switch {
	case b <= 0:
		return "–"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// orDash substitutes "steady (no scenario)" for an empty scenario spec.
func orDash(s string) string {
	if s == "" {
		return "steady"
	}
	return s
}
