package countq

import (
	"math"
	"math/bits"
)

// Histogram bucket geometry: values below histSub land in exact unit
// buckets; above that, each power of two splits into histSub sub-buckets,
// so the relative quantization error is bounded by 1/histSub (~6%) across
// the whole non-negative int64 range.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = (63 - histSubBits + 1) * histSub // top index histIndex(1<<63 - 1)
)

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (nanoseconds, in the driver's use). The zero value is empty and ready to
// use; it is not safe for concurrent use — the driver keeps one per worker
// and merges after the run.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    float64
	max    int64
}

// histIndex maps a sample to its bucket. Buckets are exact below histSub
// and geometric above, with the two regimes meeting seamlessly at histSub.
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e ≤ v < 2^(e+1), e ≥ histSubBits
	sub := int(v>>uint(e-histSubBits)) & (histSub - 1)
	return (e-histSubBits+1)*histSub + sub
}

// histBounds is the inverse of histIndex: the half-open sample range
// [lo, hi) covered by bucket i.
func histBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i) + 1
	}
	g := i/histSub - 1 // 0-based geometric group; width 2^g
	sub := int64(i % histSub)
	lo = (histSub + sub) << uint(g)
	return lo, lo + 1<<uint(g)
}

// Record adds one sample. Negative samples (a clock stepping backwards)
// clamp to zero rather than corrupting a bucket index.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n samples of the same value — the batched-grant case, where
// one timed IncN covers n counts at the amortized per-count latency.
func (h *Histogram) RecordN(v, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)] += n
	h.n += n
	h.sum += float64(v) * float64(n)
	if v > h.max {
		h.max = v
	}
}

// recordAmortized adds n samples covering one timed block of totalNs
// nanoseconds — the IncN case. The bucketed value is the rounded per-count
// cost (quantiles quantize to the histogram's 1ns floor), but the sum
// keeps the exact total, so Mean stays sub-nanosecond-accurate for large
// batches whose amortized cost is below 1ns.
func (h *Histogram) recordAmortized(totalNs, n int64) {
	if n <= 0 {
		return
	}
	if totalNs < 0 {
		totalNs = 0
	}
	v := (totalNs + n/2) / n
	h.counts[histIndex(v)] += n
	h.n += n
	h.sum += float64(totalNs)
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n }

// Mean reports the mean sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max reports the largest recorded sample, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Quantile reports the q-quantile (q in [0,1], clamped) as a bucket
// midpoint, exact in the unit-bucket regime. When the rank falls in the
// highest populated bucket the exact maximum is returned, so single-sample
// histograms report that sample at every quantile and the extreme tail
// never reads below the observed max. Quantile is nondecreasing in q;
// an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			if cum == h.n {
				// Highest populated bucket: the max is known exactly.
				return float64(h.max)
			}
			lo, hi := histBounds(i)
			return (float64(lo) + float64(hi)) / 2
		}
	}
	return float64(h.max)
}

// Stats summarizes the histogram as the driver's exported latency record,
// or nil when nothing was sampled.
func (h *Histogram) Stats() *LatencyStats {
	if h.n == 0 {
		return nil
	}
	return &LatencyStats{
		Samples: h.n,
		MeanNs:  h.Mean(),
		P50Ns:   h.Quantile(0.50),
		P90Ns:   h.Quantile(0.90),
		P99Ns:   h.Quantile(0.99),
		P999Ns:  h.Quantile(0.999),
		MaxNs:   float64(h.max),
	}
}
