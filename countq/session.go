package countq

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// This file is the v2 core API: per-worker Sessions with context and
// errors, the Structure factory that makes them, and the capability
// interfaces (BatchSession, AsyncSession) the driver exploits. The legacy
// Counter/Queuer interfaces remain the simplest way to *implement* a
// shared-memory structure — thin adapters below lift every legacy
// implementation (including its HandleMaker and BatchIncrementer
// capabilities) into the session world unchanged — but Sessions are the
// canonical way to *drive* one, and the only way to drive backends whose
// coordination round is not a synchronous shared-memory call (see
// internal/sim's bridge structures).

// Kind is the bitmask of operation kinds a structure serves. A counter
// serves Inc, a queue serves Enqueue; a structure may declare both.
type Kind int

const (
	// KindCounter marks structures whose sessions serve Inc.
	KindCounter Kind = 1 << iota
	// KindQueue marks structures whose sessions serve Enqueue.
	KindQueue
)

// Has reports whether k includes every kind in x.
func (k Kind) Has(x Kind) bool { return k&x == x }

// String renders the kind set ("counter", "queue", "counter+queue").
func (k Kind) String() string {
	var parts []string
	if k.Has(KindCounter) {
		parts = append(parts, "counter")
	}
	if k.Has(KindQueue) {
		parts = append(parts, "queue")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Caps is the bitmask of session capabilities a structure declares. The
// registry records capabilities so the driver can reject a workload that
// needs one *before* any goroutine runs, and `countq list` can print them;
// the session types returned by NewSession must back the declaration
// (a CapBatch structure's sessions implement BatchSession, a CapAsync
// structure's sessions implement AsyncSession).
type Caps int

const (
	// CapHandle marks structures whose sessions hold per-worker fast-path
	// state (the lifted form of the legacy HandleMaker capability).
	// Informational: every session already has a Close.
	CapHandle Caps = 1 << iota
	// CapBatch marks structures whose sessions implement BatchSession
	// (IncN block grants — one coordination round for a range of counts).
	CapBatch
	// CapAsync marks structures whose sessions implement AsyncSession
	// (Submit/Completions — several operations in flight per worker).
	CapAsync
)

// Has reports whether c includes every capability in x.
func (c Caps) Has(x Caps) bool { return c&x == x }

// String renders the capability set ("handle,batch,async"; "-" when empty).
func (c Caps) String() string {
	var parts []string
	if c.Has(CapHandle) {
		parts = append(parts, "handle")
	}
	if c.Has(CapBatch) {
		parts = append(parts, "batch")
	}
	if c.Has(CapAsync) {
		parts = append(parts, "async")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// ErrUnsupported is wrapped by session operations the structure does not
// serve — Enqueue on a counter-only structure, Inc on a queue-only one.
// Callers gate on the structure's declared Kinds instead of probing, so
// hitting it indicates a driver bug or a miskinded spec.
var ErrUnsupported = errors.New("operation not supported by this structure")

// Session is a per-worker conversation with a structure: the canonical
// operation surface of the v2 API. A session is owned by one goroutine and
// is not safe for concurrent use; the structure it came from is safe for
// concurrent use alongside any number of its sessions. Close surrenders
// per-session state (such as an unused lease remainder) back to the
// structure — validation drains only after every session is closed.
//
// Both operations take a context: synchronous shared-memory sessions only
// check it for cancellation before issuing, while bridged backends block on
// it for the full round trip.
type Session interface {
	// Inc returns the next count (1-based), or an error.
	Inc(ctx context.Context) (int64, error)
	// Enqueue appends id to the total order and returns the identity of
	// its predecessor (Head for the first operation), or an error.
	// Operation ids must be distinct and non-negative.
	Enqueue(ctx context.Context, id int64) (int64, error)
	// Close surrenders per-session state back to the structure.
	Close() error
}

// BatchSession is the session form of the batching capability: IncN grants
// the n consecutive counts first..first+n-1 in one coordination round.
// Sessions of structures declaring CapBatch implement it.
type BatchSession interface {
	Session
	// IncN grants n consecutive counts and returns the first. n must be
	// ≥ 1; IncN(1) is equivalent to Inc.
	IncN(ctx context.Context, n int64) (first int64, err error)
}

// OpKind distinguishes the two operation kinds a session can issue.
type OpKind uint8

const (
	// OpInc is a counting operation (Inc, or an IncN block when Op.N > 1).
	OpInc OpKind = iota
	// OpEnqueue is a queuing operation.
	OpEnqueue
)

// String returns the operation kind's name.
func (k OpKind) String() string {
	switch k {
	case OpInc:
		return "inc"
	case OpEnqueue:
		return "enqueue"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// Op describes one submitted asynchronous operation. The session echoes it
// verbatim in the matching Completion, so the submitter needs no side
// table: Token correlates, Start and Submitted carry the timestamps the
// latency accounting needs (Start is the *intended* start under an
// open-loop arrival schedule — the coordinated-omission-corrected origin —
// while Submitted is the wall-clock submit time, the service-time origin).
type Op struct {
	// Kind selects the operation; ID is the Enqueue id, N the Inc block
	// size (values ≤ 1 mean a single count).
	Kind OpKind
	ID   int64
	N    int64
	// Token is caller-chosen correlation state, echoed untouched.
	Token uint64
	// Start is the intended start (arrival-schedule) timestamp; Submitted
	// is when the operation actually entered the session. Both are set by
	// the submitter and echoed untouched.
	Start     time.Time
	Submitted time.Time
}

// Completion is one finished asynchronous operation: the Op that issued
// it, the operation's value (the count, the first count of a block, or the
// predecessor id), and the error if it failed.
type Completion struct {
	Op    Op
	Value int64
	Err   error
}

// AsyncSession is the asynchronous-completion capability: Submit queues an
// operation without waiting and the result arrives on Completions, so one
// worker can keep several operations outstanding — the op pipeline that
// makes a backend's coordination round overlappable, and the form in which
// open-loop latency avoids coordinated omission (submit on the arrival
// schedule, measure completion − intended start). Sessions of structures
// declaring CapAsync implement it.
//
// Like every Session, an AsyncSession is owned by one goroutine: one
// submitter, one completion consumer. The Completions channel is never
// closed; consumers track their own outstanding count (one Completion
// arrives per accepted Submit). Submit fails when the pipeline is full
// rather than blocking. An operation whose completion is abandoned (e.g.
// the submitter's context was cancelled after Submit accepted it) may
// still execute — its count is granted and lost to validation — so
// cancel-and-revalidate is not a supported pattern.
type AsyncSession interface {
	Session
	// Submit queues op for execution. It returns quickly: an error means
	// the operation was NOT accepted (cancelled context, full pipeline,
	// closed structure) and no Completion will arrive for it.
	Submit(ctx context.Context, op Op) error
	// Completions delivers finished operations, one per accepted Submit,
	// in completion order.
	Completions() <-chan Completion
}

// Structure is a constructed structure instance: a session factory. The
// registry's New constructors return Structures; workers call NewSession
// once each and issue every operation through their session. Structures
// that hold background resources (the sim bridge's network pump) also
// implement io.Closer, which the driver invokes when a run finishes.
type Structure interface {
	NewSession() (Session, error)
}

// --- Legacy adapters -------------------------------------------------------
//
// The adapters below lift a legacy Counter or Queuer into a Structure so
// that every implementation registered through RegisterCounter /
// RegisterQueue serves sessions unchanged:
//
//   - HandleMaker becomes the sync special case of session-making: a
//     session wraps a fresh CounterHandle, and Session.Close closes it.
//   - BatchIncrementer becomes the BatchSession capability.
//   - Drainer passes through the structure (see DrainCounts).

// legacyCounter is implemented by adapter structures wrapping a
// synchronous Counter. NewCounter and the validation drain unwrap it.
type legacyCounter interface{ LegacyCounter() Counter }

// legacyQueuer is the queue-side unwrap.
type legacyQueuer interface{ LegacyQueuer() Queuer }

// counterStructure adapts a legacy Counter (and its optional HandleMaker /
// BatchIncrementer / Drainer capabilities) to the Structure interface.
type counterStructure struct{ c Counter }

// LegacyCounter returns the wrapped Counter.
func (s *counterStructure) LegacyCounter() Counter { return s.c }

// NewSession returns a session over the wrapped counter: handle-backed
// when the counter is a HandleMaker, batch-capable when it is a
// BatchIncrementer.
func (s *counterStructure) NewSession() (Session, error) {
	cs := counterSession{inc: s.c.Inc}
	if hm, ok := s.c.(HandleMaker); ok {
		h := hm.NewHandle()
		cs.inc, cs.closeFn = h.Inc, h.Close
	}
	if bi, ok := s.c.(BatchIncrementer); ok {
		return &batchCounterSession{counterSession: cs, bi: bi}, nil
	}
	return &cs, nil
}

// counterSession serves Inc through a legacy counter (or one of its
// handles); Enqueue is unsupported.
type counterSession struct {
	inc     func() int64
	closeFn func()
}

func (s *counterSession) Inc(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.inc(), nil
}

func (s *counterSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	return 0, fmt.Errorf("countq: Enqueue on a counter session: %w", ErrUnsupported)
}

func (s *counterSession) Close() error {
	if s.closeFn != nil {
		s.closeFn()
	}
	return nil
}

// batchCounterSession adds the BatchSession capability over a legacy
// BatchIncrementer.
type batchCounterSession struct {
	counterSession
	bi BatchIncrementer
}

func (s *batchCounterSession) IncN(ctx context.Context, n int64) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("countq: IncN(%d): block size must be ≥ 1", n)
	}
	return s.bi.IncN(n), nil
}

// queueStructure adapts a legacy Queuer to the Structure interface.
type queueStructure struct{ q Queuer }

// LegacyQueuer returns the wrapped Queuer.
func (s *queueStructure) LegacyQueuer() Queuer { return s.q }

// NewSession returns a session over the wrapped queuer.
func (s *queueStructure) NewSession() (Session, error) {
	return &queueSession{q: s.q}, nil
}

// queueSession serves Enqueue through a legacy queuer; Inc is unsupported.
type queueSession struct{ q Queuer }

func (s *queueSession) Inc(ctx context.Context) (int64, error) {
	return 0, fmt.Errorf("countq: Inc on a queue session: %w", ErrUnsupported)
}

func (s *queueSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.q.Enqueue(id), nil
}

func (s *queueSession) Close() error { return nil }

// DrainCounts reclaims every leased-but-unused count from a structure
// whose implementation leases ranges (the Drainer capability), whether the
// structure implements Drainer itself or wraps a legacy counter that does.
// Structures without the capability drain to nothing. Call it only after
// every session is closed, so surrendered lease remainders are included.
func DrainCounts(s Structure) []int64 {
	if d, ok := s.(Drainer); ok {
		return d.Drain()
	}
	if lc, ok := s.(legacyCounter); ok {
		if d, ok := lc.LegacyCounter().(Drainer); ok {
			return d.Drain()
		}
	}
	return nil
}
