package countq

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// Arrival selects how operations arrive at the shared structure.
type Arrival int

const (
	// Closed is a closed loop: every goroutine issues its next operation
	// the moment the previous one returns — maximum sustained contention.
	Closed Arrival = iota
	// Uniform spaces operations with small random think times, modelling
	// independent clients arriving roughly uniformly.
	Uniform
	// Bursty alternates dense bursts of back-to-back operations with
	// longer pauses, modelling synchronized arrival spikes.
	Bursty
	// Fairshare is a closed loop driven by a rotating per-worker grant:
	// workers issue operations strictly round-robin, so per-worker op
	// counts — and the fairness ratio — measure the structure, not the
	// goroutine scheduler. It exists because on a single-core host a plain
	// closed loop legitimately reports fairness ≈ 0 (one worker drains the
	// shared pool per timeslice); under fairshare the number is
	// scheduler-independent. The rotation serializes issue order, so use
	// it for fairness readings, not throughput ceilings.
	Fairshare
)

// String returns the arrival pattern's registry name.
func (a Arrival) String() string {
	switch a {
	case Closed:
		return "closed"
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	case Fairshare:
		return "fairshare"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// ParseArrival maps a name to an Arrival pattern.
func ParseArrival(name string) (Arrival, error) {
	switch name {
	case "", "closed":
		return Closed, nil
	case "uniform":
		return Uniform, nil
	case "bursty":
		return Bursty, nil
	case "fairshare":
		return Fairshare, nil
	default:
		return 0, fmt.Errorf("countq: unknown arrival pattern %q (closed|uniform|bursty|fairshare)", name)
	}
}

// Workload configures one counting/queuing run: which structures, the total
// budget, and the shape of the load. With Scenario set the run is phased —
// the named scenario reshapes mix, goroutines, arrival and batching over a
// sequence of Phases while the structures (and their accumulated state)
// persist; otherwise the whole budget runs as one steady phase.
type Workload struct {
	// Counter and Queue are structure specs — a registered name, optionally
	// with parameters ("sharded?shards=4&batch=16"). At least one must be
	// set; leaving one empty runs a pure workload of the other kind.
	Counter string
	Queue   string
	// Scenario, when set, is a scenario spec — a registered scenario name,
	// optionally with parameters ("ramp?gmax=16"). The scenario expands
	// into phases against this workload as the base: structures, seed and
	// total budget come from here, and each phase reshapes the load.
	// Empty means one steady phase of the base shape.
	Scenario string
	// Goroutines is the number of concurrent workers (default
	// GOMAXPROCS). Scenarios treat it as the contention ceiling.
	Goroutines int
	// Ops is the total operation budget across all goroutines (default
	// 65536 when Duration is also zero). The budget is a shared pool that
	// workers claim chunks from, so per-worker op counts reflect how the
	// structure actually served them (see PhaseMetrics.Fairness).
	Ops int
	// Duration, when positive, replaces Ops: goroutines issue operations
	// until the deadline passes. Scenarios split it across phases.
	Duration time.Duration
	// Mix is the fraction of operations sent to the counter (the rest
	// enqueue), and means exactly what it says: the zero value sends every
	// operation to the queue, so a mixed run must set Mix explicitly.
	// It is forced to 1 when Queue is empty and 0 when Counter is empty;
	// with both set it must lie in [0,1].
	Mix float64
	// Batch, when > 1, issues counter operations as IncN(Batch) block
	// grants — one coordination round per Batch counts — and validation
	// covers the granted ranges. The counter must implement
	// BatchIncrementer: a batch request against a counter without the
	// capability is rejected, never silently downgraded to single Incs.
	Batch int
	// Inflight, when > 1, keeps that many operations outstanding per
	// worker through the structure's AsyncSession capability — the op
	// pipeline that overlaps coordination rounds. Like batching, it is
	// demanded, not hinted: a phase with Inflight > 1 against a structure
	// without CapAsync is rejected, never silently run synchronously.
	// 0 or 1 is the synchronous call-and-return path.
	Inflight int
	// LatencySample controls per-operation timing: every Kth operation of
	// each kind is timed (default 64; 1 times every operation). Sampling
	// keeps the timing overhead from distorting ns/op for fast structures;
	// operation totals and wall-clock elapsed stay exact regardless.
	// Negative values are rejected.
	LatencySample int
	// Arrival selects the arrival pattern (default Closed).
	Arrival Arrival
	// Seed drives the per-goroutine mix and arrival randomness; runs
	// with the same seed and goroutine count draw identical op
	// sequences.
	Seed int64
}

// withDefaults resolves the implicit knobs (goroutine count, default op
// budget, sampling interval) so scenario expansion can divide concrete
// numbers instead of re-deriving the defaults.
func (w Workload) withDefaults() Workload {
	if w.Goroutines <= 0 {
		w.Goroutines = runtime.GOMAXPROCS(0)
	}
	if w.Duration > 0 {
		w.Ops = 0 // a positive Duration replaces the ops budget
	} else if w.Ops <= 0 {
		w.Ops = 1 << 16
	}
	if w.LatencySample == 0 {
		w.LatencySample = 64
	}
	return w
}

// pause realizes the arrival pattern's think time between operations.
// Closed pauses nowhere; Fairshare also falls through — its rotation is
// the runner's grant logic, not a think time.
func pause(a Arrival, rng *rand.Rand, burst *int) {
	switch a {
	case Uniform:
		for n := rng.Intn(8); n > 0; n-- {
			runtime.Gosched()
		}
	case Bursty:
		if *burst <= 0 {
			*burst = 1 + rng.Intn(32)
			for n := 16 + rng.Intn(64); n > 0; n-- {
				runtime.Gosched()
			}
		}
		*burst--
	}
}
