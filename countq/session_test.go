package countq

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// testNativeStructure is a minimal native v3 structure (no legacy view):
// sessions serve Inc off a shared mutex-free counter via a channel-less
// fake "async" implementation, so the registry and adapter seams can be
// tested without internal/sim.
type testNativeStructure struct {
	mu   sync.Mutex
	next int64
}

func (s *testNativeStructure) NewSession() (Session, error) {
	return &testNativeSession{s: s, out: make(chan Completion, 16)}, nil
}

type testNativeSession struct {
	s   *testNativeStructure
	out chan Completion
}

func (n *testNativeSession) inc() int64 {
	n.s.mu.Lock()
	defer n.s.mu.Unlock()
	n.s.next++
	return n.s.next
}

func (n *testNativeSession) Inc(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n.inc(), nil
}

func (n *testNativeSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	return 0, ErrUnsupported
}

func (n *testNativeSession) Close() error { return nil }

func (n *testNativeSession) Submit(ctx context.Context, op Op) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if op.Kind != OpInc {
		return ErrUnsupported
	}
	n.out <- Completion{Op: op, Value: n.inc()}
	return nil
}

func (n *testNativeSession) Completions() <-chan Completion { return n.out }

var registerNativeTestStructure = sync.OnceFunc(func() {
	RegisterStructure(StructureInfo{
		Name:    "test-native",
		Summary: "native session structure without a legacy view",
		Kinds:   KindCounter,
		Caps:    CapAsync,
		New: func(o Options) (Structure, error) {
			if err := o.Err(); err != nil {
				return nil, err
			}
			return &testNativeStructure{}, nil
		},
	})
})

func TestKindAndCapsStrings(t *testing.T) {
	if got := (KindCounter | KindQueue).String(); got != "counter+queue" {
		t.Errorf("kind string = %q", got)
	}
	if got := KindQueue.String(); got != "queue" {
		t.Errorf("kind string = %q", got)
	}
	if got := Caps(0).String(); got != "-" {
		t.Errorf("empty caps = %q", got)
	}
	if got := (CapHandle | CapBatch | CapAsync).String(); got != "handle,batch,async" {
		t.Errorf("caps string = %q", got)
	}
}

func TestStructureRegistryLookups(t *testing.T) {
	registerTestImpls()
	registerNativeTestStructure()
	// A legacy counter is visible as a structure of kind counter only.
	if _, ok := LookupStructure("test-alpha", KindCounter); !ok {
		t.Error("test-alpha missing from the structure registry")
	}
	if _, ok := LookupStructure("test-alpha", KindQueue); ok {
		t.Error("test-alpha wrongly serves the queue kind")
	}
	// Probed capabilities of the legacy registrations.
	if info, _ := LookupStructure("test-batch", KindCounter); !info.Caps.Has(CapBatch) {
		t.Error("test-batch does not declare CapBatch")
	}
	if info, _ := LookupStructure("test-handle", KindCounter); !info.Caps.Has(CapHandle) {
		t.Error("test-handle does not declare CapHandle")
	}
	if info, _ := LookupStructure("test-alpha", KindCounter); info.Caps != 0 {
		t.Errorf("test-alpha declares caps %v", info.Caps)
	}
	// Unknown names report the kind's alternatives.
	if _, err := NewStructure("no-such", KindCounter); err == nil || !strings.Contains(err.Error(), "test-alpha") {
		t.Errorf("unknown structure error: %v", err)
	}
	// Undeclared params are rejected before construction.
	if _, err := NewStructure("test-native?x=1", KindCounter); err == nil {
		t.Error("undeclared param accepted")
	}
}

func TestNativeStructureHasNoLegacyView(t *testing.T) {
	registerNativeTestStructure()
	_, err := NewCounter("test-native")
	if err == nil {
		t.Fatal("NewCounter on a native structure accepted")
	}
	if !strings.Contains(err.Error(), "synchronous") {
		t.Errorf("error does not explain the missing synchronous view: %v", err)
	}
	// And it is absent from the legacy listing but present in Structures.
	for _, info := range Counters() {
		if info.Name == "test-native" {
			t.Error("native structure leaked into Counters()")
		}
	}
	found := false
	for _, info := range Structures() {
		if info.Name == "test-native" {
			found = true
		}
	}
	if !found {
		t.Error("native structure missing from Structures()")
	}
}

func TestCounterAdapterSessions(t *testing.T) {
	registerTestImpls()
	st, err := NewStructure("test-handle", KindCounter)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	var counts []int64
	for i := 0; i < 6; i++ { // 6 is not a multiple of the test lease (4)
		v, err := sess.Inc(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, v)
	}
	if _, err := sess.Enqueue(context.Background(), 1); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Enqueue on a counter session: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	counts = append(counts, DrainCounts(st)...)
	if err := ValidateCounts(counts); err != nil {
		t.Errorf("handle-backed session leaked its lease: %v", err)
	}
	// Cancelled contexts are refused before touching the structure.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	sess2, _ := st.NewSession()
	defer sess2.Close()
	if _, err := sess2.Inc(cancelled); err == nil {
		t.Error("Inc with a cancelled context accepted")
	}
}

func TestBatchAdapterSession(t *testing.T) {
	registerTestImpls()
	st, err := NewStructure("test-batch", KindCounter)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	bs, ok := sess.(BatchSession)
	if !ok {
		t.Fatal("test-batch session is not a BatchSession")
	}
	first, err := bs.IncN(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCountRanges(nil, []CountRange{{First: first, N: 8}}); err != nil {
		t.Errorf("block grant invalid: %v", err)
	}
	if _, err := bs.IncN(context.Background(), 0); err == nil {
		t.Error("IncN(0) accepted")
	}
	// A non-batching counter's session is not a BatchSession.
	plain, _ := NewStructure("test-alpha", KindCounter)
	ps, _ := plain.NewSession()
	defer ps.Close()
	if _, ok := ps.(BatchSession); ok {
		t.Error("non-batching counter produced a BatchSession")
	}
}

func TestQueueAdapterSession(t *testing.T) {
	registerTestImpls()
	st, err := NewStructure("test-queue", KindQueue)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	pr, err := sess.Enqueue(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if pr != Head {
		t.Errorf("first predecessor = %d, want Head", pr)
	}
	if _, err := sess.Inc(context.Background()); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Inc on a queue session: %v", err)
	}
}

func TestDriverAsyncAgainstNativeStructure(t *testing.T) {
	registerTestImpls()
	registerNativeTestStructure()
	m, err := Run(Workload{Counter: "test-native", Goroutines: 3, Ops: 900, Inflight: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Aggregate.Ops != 900 {
		t.Errorf("async ops = %d, want 900", m.Aggregate.Ops)
	}
	if m.Aggregate.CounterCorr == nil {
		t.Error("async run recorded no corrected latency")
	}
	// Inflight against a sync-only structure fails loudly, naming the
	// capability.
	_, err = Run(Workload{Counter: "test-alpha", Ops: 200, Inflight: 4})
	if err == nil {
		t.Fatal("inflight against a sync-only counter accepted")
	}
	if !strings.Contains(err.Error(), "AsyncSession") {
		t.Errorf("inflight error does not name the capability: %v", err)
	}
	// Fairshare cannot combine with pipelining.
	if _, err := Run(Workload{Counter: "test-native", Ops: 200, Inflight: 4, Arrival: Fairshare}); err == nil {
		t.Error("fairshare + inflight accepted")
	}
}

func TestDriverFairshareArrival(t *testing.T) {
	registerTestImpls()
	m, err := Run(Workload{Counter: "test-alpha", Goroutines: 4, Ops: 8000, Arrival: Fairshare, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Aggregate.Ops != 8000 {
		t.Errorf("fairshare ops = %d, want 8000", m.Aggregate.Ops)
	}
	// The rotating grant hands every worker the same share regardless of
	// scheduler placement — that is the pattern's whole purpose.
	if m.Phases[0].Fairness < 0.9 {
		t.Errorf("fairshare fairness = %v, want ≥ 0.9 (worker ops %v)", m.Phases[0].Fairness, m.Phases[0].WorkerOps)
	}
	if m.Phases[0].Arrival != "fairshare" {
		t.Errorf("arrival = %q", m.Phases[0].Arrival)
	}
	if _, err := ParseArrival("fairshare"); err != nil {
		t.Errorf("ParseArrival(fairshare): %v", err)
	}
}

func TestDriverCorrectedLatency(t *testing.T) {
	registerTestImpls()
	// Open arrivals record corrected quantiles; the corrected response
	// time can never undercut the service time it contains.
	m, err := Run(Workload{Counter: "test-alpha", Goroutines: 2, Ops: 4000, Arrival: Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	corr := m.Aggregate.CounterCorr
	if corr == nil {
		t.Fatal("uniform arrivals recorded no corrected latency")
	}
	if svc := m.Aggregate.CounterLat; corr.P50Ns < svc.P50Ns {
		t.Errorf("corrected p50 %v below service p50 %v", corr.P50Ns, svc.P50Ns)
	}
	// Plain closed loops record none: the columns would duplicate the
	// service distribution.
	m, err = Run(Workload{Counter: "test-alpha", Goroutines: 2, Ops: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Aggregate.CounterCorr != nil {
		t.Error("closed loop recorded corrected latency")
	}
}

func TestOptionsDurationAndString(t *testing.T) {
	var o Options
	o.Set("hoplat", "2us")
	o.Set("topo", "star")
	if d := o.Duration("hoplat", time.Millisecond); d != 2*time.Microsecond {
		t.Errorf("Duration = %v", d)
	}
	if s := o.String("topo", "x"); s != "star" {
		t.Errorf("String = %q", s)
	}
	if s := o.String("absent", "fallback"); s != "fallback" {
		t.Errorf("String default = %q", s)
	}
	if d := o.Duration("absent", 3*time.Second); d != 3*time.Second {
		t.Errorf("Duration default = %v", d)
	}
	o.Set("bad", "soon")
	if o.Duration("bad", 0); o.Err() == nil {
		t.Error("malformed duration accepted")
	}
	var zero Options
	zero.Set("z", "0")
	if d := zero.Duration("z", time.Second); d != 0 {
		t.Errorf("bare zero duration = %v", d)
	}
}

func TestCampaignEntryOverrides(t *testing.T) {
	registerTestImpls()
	cmp, err := Campaign{
		Base: Workload{Ops: 4000, Seed: 1, Goroutines: 2},
		Entries: []Entry{
			{Counter: "test-batch"},
			{Counter: "test-batch", Batch: 32},
			{Counter: "test-batch", Goroutines: 4},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"test-batch", "test-batch@batch=32", "test-batch@g=4"}
	for i, want := range labels {
		if got := cmp.Results[i].Label; got != want {
			t.Errorf("label[%d] = %q, want %q", i, got, want)
		}
	}
	if got := cmp.Results[1].Metrics.Phases[0].Batch; got != 32 {
		t.Errorf("batch override: phase batch = %d", got)
	}
	if got := cmp.Results[2].Metrics.Phases[0].Goroutines; got != 4 {
		t.Errorf("goroutine override: phase g = %d", got)
	}
	// Overrides participate in the duplicate-label check: the same spec
	// twice without distinct overrides is rejected.
	_, err = Campaign{
		Base:    Workload{Ops: 1000},
		Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-alpha"}},
	}.Run()
	if err == nil {
		t.Error("duplicate entries accepted")
	}
	// Batch override against a non-batching counter fails loudly.
	_, err = Campaign{
		Base:    Workload{Ops: 1000},
		Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-alpha", Batch: 16}},
	}.Run()
	if err == nil {
		t.Error("batch override against a non-batching counter accepted")
	}
}
