package countq

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// opsChunk is the granule workers claim from a phase's shared op pool:
// large enough that the claim CAS stays out of the measured hot path,
// small enough that an actually-starved worker shows up in the per-worker
// op counts instead of being handed a preassigned quota.
const opsChunk = 64

// Run executes the workload against freshly constructed instances of the
// specified implementations — as one steady phase, or as the phase
// sequence of Workload.Scenario — validates the outcome once across all
// phases (counts distinct and gap-free after draining leased remainders,
// block grants included; predecessors a single total order), and reports
// structured per-phase and aggregate Metrics: latency quantiles per op
// kind, a windowed throughput timeline, and per-worker fairness.
//
// Capability interfaces are exploited when present: a HandleMaker counter
// serves each worker through its own handle (closed when the worker
// finishes). Batching is demanded, not hinted: a phase with Batch > 1
// requires a BatchIncrementer counter and fails loudly without one.
func Run(w Workload) (*Metrics, error) {
	if w.Counter == "" && w.Queue == "" {
		return nil, fmt.Errorf("countq: workload names neither a counter nor a queue")
	}
	base := w.withDefaults()
	scenarioSpec := ""
	var phases []Phase
	if w.Scenario != "" {
		sc, err := ExpandScenario(w.Scenario, base)
		if err != nil {
			return nil, err
		}
		scenarioSpec, phases = sc.Spec, sc.Phases
	} else {
		phases = []Phase{basePhase(base, "steady")}
		phases[0].Ops, phases[0].Duration = base.Ops, base.Duration
	}
	return runSpec(base, scenarioSpec, phases)
}

// runSpec constructs the workload's structures and drives an
// already-expanded phase sequence — the shared back half of Run and
// Campaign.Run. It owns (and mutates) the phases slice; callers reusing an
// expansion across runs must pass each run its own copy.
func runSpec(w Workload, scenarioSpec string, phases []Phase) (*Metrics, error) {
	if w.Counter == "" && w.Queue == "" {
		return nil, fmt.Errorf("countq: workload names neither a counter nor a queue")
	}
	var (
		c   Counter
		q   Queuer
		err error
	)
	if w.Counter != "" {
		if c, err = NewCounter(w.Counter); err != nil {
			return nil, err
		}
	}
	if w.Queue != "" {
		if q, err = NewQueue(w.Queue); err != nil {
			return nil, err
		}
	}
	return runPhases(w, scenarioSpec, phases, c, q)
}

// laneData is the validation evidence one worker (and, merged, one run)
// accumulates: every count, block grant and (id, predecessor) pair.
type laneData struct {
	counts     []int64
	blocks     []CountRange
	ids, preds []int64
}

func (d *laneData) merge(o *laneData) {
	d.counts = append(d.counts, o.counts...)
	d.blocks = append(d.blocks, o.blocks...)
	d.ids = append(d.ids, o.ids...)
	d.preds = append(d.preds, o.preds...)
}

// runPhases drives the phase sequence over the shared structure instances
// and validates the accumulated evidence once at the end.
func runPhases(base Workload, scenarioSpec string, phases []Phase, c Counter, q Queuer) (*Metrics, error) {
	var batcher BatchIncrementer
	if c != nil {
		batcher, _ = c.(BatchIncrementer)
	}
	maker, _ := c.(HandleMaker)

	// Validate the whole phase sequence before any goroutine runs: a
	// misconfigured final phase must not waste the preceding ones.
	if len(phases) > 256 {
		return nil, fmt.Errorf("countq: %d phases overflow the queue-op id packing (max 256)", len(phases))
	}
	for i := range phases {
		p := &phases[i]
		if p.Goroutines <= 0 {
			p.Goroutines = base.Goroutines
		}
		if p.Goroutines > 1<<15 {
			return nil, fmt.Errorf("countq: phase %q: %d goroutines overflow the queue-op id packing (max %d)", p.Name, p.Goroutines, 1<<15)
		}
		if p.LatencySample == 0 {
			p.LatencySample = base.LatencySample
		}
		if p.LatencySample < 0 {
			return nil, fmt.Errorf("countq: phase %q: latency sample %d is negative (want 0 for the default, or ≥ 1)", p.Name, p.LatencySample)
		}
		switch {
		case q == nil:
			p.Mix = 1
		case c == nil:
			p.Mix = 0
		}
		if p.Mix < 0 || p.Mix > 1 {
			return nil, fmt.Errorf("countq: phase %q: counter mix %v outside [0,1]", p.Name, p.Mix)
		}
		if p.Batch < 0 {
			return nil, fmt.Errorf("countq: phase %q: negative batch %d", p.Name, p.Batch)
		}
		if p.Batch == 1 {
			p.Batch = 0 // IncN(1) is Inc; keep the single-Inc path
		}
		if p.Batch > 1 && p.Mix > 0 && batcher == nil {
			return nil, fmt.Errorf("countq: phase %q sets batch=%d but counter %q lacks the BatchIncrementer capability (block grants); drop the batch or pick a batching counter", p.Name, p.Batch, base.Counter)
		}
		if p.Duration > 0 {
			p.Ops = 0
		} else if p.Ops <= 0 {
			return nil, fmt.Errorf("countq: phase %q has neither an ops nor a duration budget", p.Name)
		}
	}

	m := &Metrics{
		Counter:  base.Counter,
		Queue:    base.Queue,
		Scenario: scenarioSpec,
		Seed:     base.Seed,
	}
	var all laneData
	var aggCounter, aggQueue Histogram
	agg := Aggregate{Fairness: 1}
	runStart := time.Now()
	for pi := range phases {
		pm, data, chist, qhist := runPhase(c, q, maker, batcher, base, pi, phases[pi], runStart)
		all.merge(&data)
		m.Phases = append(m.Phases, pm)
		if pm.Goroutines > m.Goroutines {
			m.Goroutines = pm.Goroutines
		}
		if pm.Warmup {
			continue
		}
		agg.Ops += pm.Ops
		agg.CounterOps += pm.CounterOps
		agg.QueueOps += pm.QueueOps
		agg.Elapsed += pm.Elapsed
		agg.Timeline = append(agg.Timeline, pm.Timeline...)
		if pm.Fairness < agg.Fairness {
			agg.Fairness = pm.Fairness
		}
		aggCounter.Merge(chist)
		aggQueue.Merge(qhist)
	}
	m.Elapsed = time.Since(runStart)
	agg.CounterLat = aggCounter.Stats()
	agg.QueueLat = aggQueue.Stats()
	m.Aggregate = agg

	// Fail-loudly sampling invariant: operations of a kind without a single
	// latency sample would silently report no distribution at all.
	if agg.CounterOps > 0 && agg.CounterLat == nil {
		return nil, fmt.Errorf("countq: %d counter operations but none latency-sampled", agg.CounterOps)
	}
	if agg.QueueOps > 0 && agg.QueueLat == nil {
		return nil, fmt.Errorf("countq: %d queue operations but none latency-sampled", agg.QueueOps)
	}

	// One validation pass over the whole run, warmup included: phases share
	// the structure instances, so counts keep rising across phase
	// boundaries and the gap-free check must see every grant.
	if d, ok := c.(Drainer); ok {
		all.counts = append(all.counts, d.Drain()...)
	}
	if err := ValidateCountRanges(all.counts, all.blocks); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", base.Counter, err)
	}
	if err := ValidateOrder(all.ids, all.preds); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", base.Queue, err)
	}
	return m, nil
}

// claimOps takes up to chunk ops from the phase's shared pool, returning 0
// when the budget is exhausted.
func claimOps(pool *atomic.Int64, chunk int64) int64 {
	for {
		r := pool.Load()
		if r <= 0 {
			return 0
		}
		n := chunk
		if n > r {
			n = r
		}
		if pool.CompareAndSwap(r, r-n) {
			return n
		}
	}
}

// runPhase spawns the phase's workers against the shared structures and
// folds their lanes into one PhaseMetrics plus the validation evidence and
// per-kind histograms (returned separately so the caller can merge them
// into the aggregate without re-binning).
func runPhase(c Counter, q Queuer, maker HandleMaker, batcher BatchIncrementer, base Workload, pi int, p Phase, runStart time.Time) (PhaseMetrics, laneData, *Histogram, *Histogram) {
	type lane struct {
		laneData
		chist, qhist Histogram
		events       []tlEvent
		issued       int64
	}
	batch := p.Batch
	if p.Mix == 0 {
		batch = 0
	}
	// Each batched draw grants `batch` counter operations at once, so the
	// per-draw counter probability must shrink for Mix to stay the
	// fraction of *operations* that count: solving
	// p·batch / (p·batch + (1-p)) = mix for p.
	drawMix := p.Mix
	if batch > 1 && p.Mix > 0 && p.Mix < 1 {
		drawMix = p.Mix / (float64(batch)*(1-p.Mix) + p.Mix)
	}
	chunk := int64(opsChunk)
	if int64(batch) > chunk {
		chunk = int64(batch)
	}
	var pool atomic.Int64
	pool.Store(int64(p.Ops))
	hasPool := p.Ops > 0
	lanes := make([]lane, p.Goroutines)
	// Workers rendezvous on a start barrier so spawn latency is neither
	// measured nor lets early workers drain the shared pool before late
	// ones exist (which would read as unfairness the structure didn't
	// cause).
	var ready, wg sync.WaitGroup
	start := make(chan struct{})
	var phaseStart time.Time
	var deadline time.Time
	for gi := 0; gi < p.Goroutines; gi++ {
		ready.Add(1)
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ready.Done()
			<-start
			ln := &lanes[gi]
			rng := rand.New(rand.NewSource(base.Seed + int64(pi)*104729 + int64(gi)*7919))
			inc := func() int64 { return c.Inc() } // c may be nil in pure-queue phases
			if maker != nil {
				h := maker.NewHandle()
				defer h.Close()
				inc = h.Inc
			}
			sample := p.LatencySample
			var sinceEvent int64 // unsampled ops since the last timeline event
			observe := func(h *Histogram, totalNs, n int64, at time.Time) {
				h.recordAmortized(totalNs, n)
				ln.events = append(ln.events, tlEvent{off: at.Sub(runStart).Nanoseconds(), ops: sinceEvent + n})
				sinceEvent = 0
			}
			allowance := int64(0) // ops claimed from the pool, not yet issued
			burst := 0
			for iter := 0; ; iter++ {
				if hasPool {
					if allowance == 0 {
						if allowance = claimOps(&pool, chunk); allowance == 0 {
							break
						}
					}
				} else if iter%64 == 0 && !time.Now().Before(deadline) {
					break
				}
				pause(p.Arrival, rng, &burst)
				if p.Mix == 1 || (p.Mix > 0 && rng.Float64() < drawMix) {
					if batch > 1 {
						n := int64(batch)
						if hasPool && n > allowance {
							n = allowance
						}
						if len(ln.blocks)%sample == 0 {
							t0 := time.Now()
							first := batcher.IncN(n)
							t1 := time.Now()
							ln.blocks = append(ln.blocks, CountRange{First: first, N: n})
							observe(&ln.chist, t1.Sub(t0).Nanoseconds(), n, t1)
						} else {
							ln.blocks = append(ln.blocks, CountRange{First: batcher.IncN(n), N: n})
							sinceEvent += n
						}
						ln.issued += n
						if hasPool {
							allowance -= n
						}
						continue
					}
					if len(ln.counts)%sample == 0 {
						t0 := time.Now()
						v := inc()
						t1 := time.Now()
						ln.counts = append(ln.counts, v)
						observe(&ln.chist, t1.Sub(t0).Nanoseconds(), 1, t1)
					} else {
						ln.counts = append(ln.counts, inc())
						sinceEvent++
					}
				} else {
					// 8 bits of phase, 15 of lane, 40 of draw index:
					// distinct non-negative ids across the whole run.
					id := int64(pi)<<55 | int64(gi)<<40 | int64(iter)
					if len(ln.ids)%sample == 0 {
						t0 := time.Now()
						pr := q.Enqueue(id)
						t1 := time.Now()
						ln.ids = append(ln.ids, id)
						ln.preds = append(ln.preds, pr)
						observe(&ln.qhist, t1.Sub(t0).Nanoseconds(), 1, t1)
					} else {
						ln.ids = append(ln.ids, id)
						ln.preds = append(ln.preds, q.Enqueue(id))
						sinceEvent++
					}
				}
				ln.issued++
				if hasPool {
					allowance--
				}
			}
			if sinceEvent > 0 {
				ln.events = append(ln.events, tlEvent{off: time.Since(runStart).Nanoseconds(), ops: sinceEvent})
			}
		}(gi)
	}
	ready.Wait()
	phaseStart = time.Now()
	deadline = phaseStart.Add(p.Duration) // workers observe this via the start barrier
	startNs := phaseStart.Sub(runStart).Nanoseconds()
	close(start)
	wg.Wait()
	elapsed := time.Since(phaseStart)

	var data laneData
	var chist, qhist Histogram
	var events []tlEvent
	workers := make([]int64, p.Goroutines)
	for gi := range lanes {
		data.merge(&lanes[gi].laneData)
		chist.Merge(&lanes[gi].chist)
		qhist.Merge(&lanes[gi].qhist)
		events = append(events, lanes[gi].events...)
		workers[gi] = lanes[gi].issued
	}
	counterOps := len(data.counts)
	for _, b := range data.blocks {
		counterOps += int(b.N)
	}
	queueOps := len(data.ids)
	pm := PhaseMetrics{
		Name:       p.Name,
		Warmup:     p.Warmup,
		Goroutines: p.Goroutines,
		Mix:        p.Mix,
		Arrival:    p.Arrival.String(),
		Batch:      batch,
		StartNs:    startNs,
		Elapsed:    elapsed,
		Ops:        counterOps + queueOps,
		CounterOps: counterOps,
		QueueOps:   queueOps,
		CounterLat: chist.Stats(),
		QueueLat:   qhist.Stats(),
		Timeline:   buildTimeline(events, startNs, elapsed.Nanoseconds()),
		WorkerOps:  workers,
		Fairness:   fairness(workers),
	}
	return pm, data, &chist, &qhist
}

// fairness is min/max over per-worker op counts: 1 is perfectly fair, 0
// means some worker was fully starved. A phase where nothing ran at all is
// vacuously fair.
func fairness(workers []int64) float64 {
	if len(workers) == 0 {
		return 1
	}
	min, max := workers[0], workers[0]
	for _, w := range workers[1:] {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return 1
	}
	return float64(min) / float64(max)
}
