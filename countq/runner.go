package countq

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// opsChunk is the granule workers claim from a phase's shared op pool:
// large enough that the claim CAS stays out of the measured hot path,
// small enough that an actually-starved worker shows up in the per-worker
// op counts instead of being handed a preassigned quota.
const opsChunk = 64

// Run executes the workload against freshly constructed instances of the
// specified implementations — as one steady phase, or as the phase
// sequence of Workload.Scenario — validates the outcome once across all
// phases (counts distinct and gap-free after draining leased remainders,
// block grants included; predecessors a single total order), and reports
// structured per-phase and aggregate Metrics: latency quantiles per op
// kind (with coordinated-omission-corrected quantiles under open-loop
// arrivals and async pipelining), a windowed throughput timeline, and
// per-worker fairness.
//
// Every operation flows through the session layer: each worker opens one
// Session per structure and issues Inc/Enqueue through it, so legacy
// HandleMaker counters get their per-worker fast path automatically.
// Capabilities are demanded, not hinted: a phase with Batch > 1 requires a
// CapBatch structure, a phase with Inflight > 1 requires CapAsync, and
// either fails loudly when the capability is missing.
func Run(w Workload) (*Metrics, error) {
	if w.Counter == "" && w.Queue == "" {
		return nil, fmt.Errorf("countq: workload names neither a counter nor a queue")
	}
	base := w.withDefaults()
	scenarioSpec := ""
	var phases []Phase
	if w.Scenario != "" {
		sc, err := ExpandScenario(w.Scenario, base)
		if err != nil {
			return nil, err
		}
		scenarioSpec, phases = sc.Spec, sc.Phases
	} else {
		phases = []Phase{basePhase(base, "steady")}
		phases[0].Ops, phases[0].Duration = base.Ops, base.Duration
	}
	return runSpec(base, scenarioSpec, phases)
}

// runSpec constructs the workload's structures and drives an
// already-expanded phase sequence — the shared back half of Run and
// Campaign.Run. It owns (and mutates) the phases slice; callers reusing an
// expansion across runs must pass each run its own copy. Structures
// holding background resources (io.Closer) are closed when the run ends.
func runSpec(w Workload, scenarioSpec string, phases []Phase) (*Metrics, error) {
	if w.Counter == "" && w.Queue == "" {
		return nil, fmt.Errorf("countq: workload names neither a counter nor a queue")
	}
	var (
		cs, qs       Structure
		cinfo, qinfo StructureInfo
	)
	if w.Counter != "" {
		s, err := ParseSpec(w.Counter)
		if err != nil {
			return nil, err
		}
		if cs, cinfo, err = newStructureFromSpec(s, KindCounter); err != nil {
			return nil, err
		}
	}
	if w.Queue != "" {
		s, err := ParseSpec(w.Queue)
		if err != nil {
			return nil, err
		}
		if qs, qinfo, err = newStructureFromSpec(s, KindQueue); err != nil {
			return nil, err
		}
	}
	defer closeStructure(cs)
	defer closeStructure(qs)
	return runPhases(w, scenarioSpec, phases, cs, qs, cinfo, qinfo)
}

// closeStructure releases a structure's background resources when it holds
// any (the sim bridge's network pump). Best effort: a close failure cannot
// un-validate an already-validated run.
func closeStructure(s Structure) {
	if c, ok := s.(io.Closer); ok {
		c.Close()
	}
}

// laneData is the validation evidence one worker (and, merged, one run)
// accumulates: every count, block grant and (id, predecessor) pair.
type laneData struct {
	counts     []int64
	blocks     []CountRange
	ids, preds []int64
}

func (d *laneData) merge(o *laneData) {
	d.counts = append(d.counts, o.counts...)
	d.blocks = append(d.blocks, o.blocks...)
	d.ids = append(d.ids, o.ids...)
	d.preds = append(d.preds, o.preds...)
}

// phaseHists bundles one lane's (or one phase's) latency histograms:
// service time per op kind plus the coordinated-omission-corrected
// distributions.
type phaseHists struct {
	c, q         Histogram
	ccorr, qcorr Histogram
}

func (h *phaseHists) merge(o *phaseHists) {
	h.c.Merge(&o.c)
	h.q.Merge(&o.q)
	h.ccorr.Merge(&o.ccorr)
	h.qcorr.Merge(&o.qcorr)
}

// runPhases drives the phase sequence over the shared structure instances
// and validates the accumulated evidence once at the end.
func runPhases(base Workload, scenarioSpec string, phases []Phase, cs, qs Structure, cinfo, qinfo StructureInfo) (*Metrics, error) {
	// Validate the whole phase sequence before any goroutine runs: a
	// misconfigured final phase must not waste the preceding ones.
	if len(phases) > 256 {
		return nil, fmt.Errorf("countq: %d phases overflow the queue-op id packing (max 256)", len(phases))
	}
	for i := range phases {
		p := &phases[i]
		if p.Goroutines <= 0 {
			p.Goroutines = base.Goroutines
		}
		if p.Goroutines > 1<<15 {
			return nil, fmt.Errorf("countq: phase %q: %d goroutines overflow the queue-op id packing (max %d)", p.Name, p.Goroutines, 1<<15)
		}
		if p.LatencySample == 0 {
			p.LatencySample = base.LatencySample
		}
		if p.LatencySample < 0 {
			return nil, fmt.Errorf("countq: phase %q: latency sample %d is negative (want 0 for the default, or ≥ 1)", p.Name, p.LatencySample)
		}
		switch {
		case qs == nil:
			p.Mix = 1
		case cs == nil:
			p.Mix = 0
		}
		if p.Mix < 0 || p.Mix > 1 {
			return nil, fmt.Errorf("countq: phase %q: counter mix %v outside [0,1]", p.Name, p.Mix)
		}
		if p.Batch < 0 {
			return nil, fmt.Errorf("countq: phase %q: negative batch %d", p.Name, p.Batch)
		}
		if p.Batch == 1 {
			p.Batch = 0 // IncN(1) is Inc; keep the single-Inc path
		}
		if p.Batch > 1 && p.Mix > 0 && !cinfo.Caps.Has(CapBatch) {
			return nil, fmt.Errorf("countq: phase %q sets batch=%d but counter %q lacks the batch capability (BatchIncrementer / BatchSession block grants); drop the batch or pick a batching counter", p.Name, p.Batch, base.Counter)
		}
		if p.Inflight == 0 {
			p.Inflight = base.Inflight
		}
		if p.Inflight < 0 {
			return nil, fmt.Errorf("countq: phase %q: negative inflight %d", p.Name, p.Inflight)
		}
		if p.Inflight == 1 {
			p.Inflight = 0 // one outstanding op is the synchronous path
		}
		if p.Inflight > 1 {
			if p.Arrival == Fairshare {
				return nil, fmt.Errorf("countq: phase %q: the fairshare rotation grants one operation at a time and cannot be combined with inflight=%d pipelining", p.Name, p.Inflight)
			}
			if p.Mix > 0 && !cinfo.Caps.Has(CapAsync) {
				return nil, fmt.Errorf("countq: phase %q sets inflight=%d but counter %q lacks the async capability (AsyncSession completions); drop the inflight or pick an async-capable structure", p.Name, p.Inflight, base.Counter)
			}
			if p.Mix < 1 && !qinfo.Caps.Has(CapAsync) {
				return nil, fmt.Errorf("countq: phase %q sets inflight=%d but queue %q lacks the async capability (AsyncSession completions); drop the inflight or pick an async-capable structure", p.Name, p.Inflight, base.Queue)
			}
		}
		if p.Duration > 0 {
			p.Ops = 0
		} else if p.Ops <= 0 {
			return nil, fmt.Errorf("countq: phase %q has neither an ops nor a duration budget", p.Name)
		}
	}

	m := &Metrics{
		Counter:  base.Counter,
		Queue:    base.Queue,
		Scenario: scenarioSpec,
		Seed:     base.Seed,
	}
	var all laneData
	var aggHists phaseHists
	var totalAllocs, totalAllocBytes float64
	agg := Aggregate{Fairness: 1}
	runStart := time.Now()
	for pi := range phases {
		pm, data, hists, err := runPhase(cs, qs, base, pi, phases[pi], runStart)
		if err != nil {
			return nil, err
		}
		all.merge(&data)
		m.Phases = append(m.Phases, pm)
		if pm.Goroutines > m.Goroutines {
			m.Goroutines = pm.Goroutines
		}
		if pm.Warmup {
			continue
		}
		agg.Ops += pm.Ops
		agg.CounterOps += pm.CounterOps
		agg.QueueOps += pm.QueueOps
		agg.Elapsed += pm.Elapsed
		agg.Timeline = append(agg.Timeline, pm.Timeline...)
		agg.MemTimeline = append(agg.MemTimeline, pm.MemTimeline...)
		if pm.LivePeakBytes > agg.LivePeakBytes {
			agg.LivePeakBytes = pm.LivePeakBytes
		}
		totalAllocs += pm.AllocsPerOp * float64(pm.Ops)
		totalAllocBytes += pm.AllocBytesPerOp * float64(pm.Ops)
		if pm.Fairness < agg.Fairness {
			agg.Fairness = pm.Fairness
		}
		aggHists.merge(hists)
	}
	m.Elapsed = time.Since(runStart)
	agg.CounterLat = aggHists.c.Stats()
	agg.QueueLat = aggHists.q.Stats()
	agg.CounterCorr = aggHists.ccorr.Stats()
	agg.QueueCorr = aggHists.qcorr.Stats()
	if agg.Ops > 0 {
		agg.AllocsPerOp = totalAllocs / float64(agg.Ops)
		agg.AllocBytesPerOp = totalAllocBytes / float64(agg.Ops)
	}
	m.Aggregate = agg

	// Fail-loudly sampling invariant: operations of a kind without a single
	// latency sample would silently report no distribution at all.
	if agg.CounterOps > 0 && agg.CounterLat == nil {
		return nil, fmt.Errorf("countq: %d counter operations but none latency-sampled", agg.CounterOps)
	}
	if agg.QueueOps > 0 && agg.QueueLat == nil {
		return nil, fmt.Errorf("countq: %d queue operations but none latency-sampled", agg.QueueOps)
	}

	// One validation pass over the whole run, warmup included: phases share
	// the structure instances, so counts keep rising across phase
	// boundaries and the gap-free check must see every grant. Sessions are
	// all closed by now, so DrainCounts sees surrendered lease remainders.
	if cs != nil {
		all.counts = append(all.counts, DrainCounts(cs)...)
	}
	if err := ValidateCountRanges(all.counts, all.blocks); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", base.Counter, err)
	}
	if err := ValidateOrder(all.ids, all.preds); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", base.Queue, err)
	}
	return m, nil
}

// claimOps takes up to chunk ops from the phase's shared pool, returning 0
// when the budget is exhausted.
//
//countq:hotpath clocks=0
func claimOps(pool *atomic.Int64, chunk int64) int64 {
	for {
		r := pool.Load()
		if r <= 0 {
			return 0
		}
		n := chunk
		if n > r {
			n = r
		}
		if pool.CompareAndSwap(r, r-n) {
			return n
		}
	}
}

// phaseDeadline amortizes a phase's duration budget: one timer flips the
// flag when the wall budget expires, and every worker polls a single
// uncontended atomic load per iteration — replacing the old idiom of each
// worker re-reading the wall clock every 64 iterations, which appeared
// verbatim in both the sync and async loops.
type phaseDeadline struct {
	expired atomic.Bool
	timer   *time.Timer
}

func startDeadline(d time.Duration) *phaseDeadline {
	pd := &phaseDeadline{}
	pd.timer = time.AfterFunc(d, func() { pd.expired.Store(true) })
	return pd
}

// done reports whether the budget expired. A nil deadline (an ops-budget
// phase) never expires.
//
//countq:hotpath clocks=0
func (pd *phaseDeadline) done() bool { return pd != nil && pd.expired.Load() }

// stop releases the timer.
func (pd *phaseDeadline) stop() {
	if pd != nil {
		pd.timer.Stop()
	}
}

// grow returns s with room for at least n more elements, doubling capacity
// so that reserving ahead of appends keeps the per-op append path free of
// allocation inside a measured phase.
func grow[T any](s []T, n int) []T {
	if n <= cap(s)-len(s) {
		return s
	}
	c := 2 * cap(s)
	if c < len(s)+n {
		c = len(s) + n
	}
	ns := make([]T, len(s), c)
	copy(ns, s)
	return ns
}

// lane is one worker's phase-local accumulation: validation evidence,
// latency histograms, timeline events, and the op count feeding fairness.
type lane struct {
	laneData
	hists  phaseHists
	events []tlEvent
	issued int64
	err    error
}

// laneRunner is one worker's execution state for one phase. Everything it
// allocates — evidence capacity, histograms, the rng — is set up before
// the start barrier, and the per-op methods (issueSync, submitOne, reap)
// are written to run at zero heap allocations; alloc_test.go gates them
// with testing.AllocsPerRun.
type laneRunner struct {
	ln     *lane
	p      *Phase
	pi, gi int

	csess Session
	qsess Session
	bsess BatchSession
	cas   AsyncSession
	qas   AsyncSession
	cch   <-chan Completion
	qch   <-chan Completion

	ctx     context.Context
	rng     *rand.Rand
	batch   int
	drawMix float64
	sample  int
	chunk   int64
	open    bool
	hasPool bool

	pool *atomic.Int64
	dl   *phaseDeadline

	runStart   time.Time
	phaseStart time.Time
	// intended is the corrected-latency clock: it accumulates the arrival
	// schedule's think times from the phase start, independent of how long
	// service takes — when the structure falls behind, completion − intended
	// grows by the backlog, which is exactly what coordinated omission hides.
	intended time.Time
	// mark is the most recent clock read. Under an open arrival it is
	// refreshed after every pause and after every completed op, so it can
	// double as the sampled op's t0 and keep service time out of intended —
	// one clock read where the old loop took up to three.
	mark time.Time

	allowance   int64 // ops claimed from the pool, not yet issued
	resLeft     int64 // reserved evidence capacity left (duration phases)
	sinceEvent  int64 // unsampled ops since the last timeline event
	burst       int
	iter        int
	outstanding int
}

// begin stamps the phase clocks once the start barrier opens.
func (r *laneRunner) begin(phaseStart time.Time) {
	r.phaseStart = phaseStart
	r.intended = phaseStart
	r.mark = phaseStart
}

// reserve grows the lane's evidence and event logs to absorb n more ops
// without allocating on the per-op path. Called outside the measured
// window at setup, then at pool-claim granularity, so steady state sees
// appends into preexisting capacity only.
func (r *laneRunner) reserve(n int64) {
	ln := r.ln
	if r.p.Mix > 0 {
		if r.batch > 1 {
			ln.blocks = grow(ln.blocks, int(n)/r.batch+1)
		} else {
			ln.counts = grow(ln.counts, int(n))
		}
	}
	if r.p.Mix < 1 {
		ln.ids = grow(ln.ids, int(n))
		ln.preds = grow(ln.preds, int(n))
	}
	ln.events = grow(ln.events, int(n)/r.sample+2)
}

// claim secures budget for at least one more draw: a chunk from the shared
// op pool, or — on a duration budget — a cheap check of the amortized
// deadline flag plus evidence reservation in opsChunk strides. Returns
// false when the phase's budget is exhausted.
//
//countq:hotpath clocks=0
func (r *laneRunner) claim() bool {
	if r.hasPool {
		if r.allowance == 0 {
			if r.allowance = claimOps(r.pool, r.chunk); r.allowance == 0 {
				return false
			}
			r.reserve(r.allowance)
		}
		return true
	}
	if r.dl.done() {
		return false
	}
	if r.resLeft <= 0 {
		r.reserve(opsChunk)
		r.resLeft = opsChunk
	}
	return true
}

// consume books n granted ops against the claimed allowance.
//
//countq:hotpath clocks=0
func (r *laneRunner) consume(n int64) {
	if r.hasPool {
		r.allowance -= n
	} else {
		r.resLeft -= n
	}
}

// arrive waits out one open-loop think time and advances the intended
// clock. mark is the previous post-op (or post-pause) read, so the span
// added to intended covers the pause but never service time.
//
//countq:hotpath
func (r *laneRunner) arrive() {
	pause(r.p.Arrival, r.rng, &r.burst)
	now := time.Now()
	r.intended = r.intended.Add(now.Sub(r.mark))
	r.mark = now
}

// t0 is the service-time start of a sampled synchronous op. Under an open
// arrival the post-pause read taken moments ago already marks it, so the
// sampled path costs one fresh clock read (t1) instead of three.
//
//countq:hotpath
func (r *laneRunner) t0() time.Time {
	if r.open {
		return r.mark
	}
	return time.Now()
}

// observe records one sampled op: histogram plus a timeline event that
// reuses the op's completion timestamp instead of reading the clock again.
//
//countq:hotpath clocks=0
func (r *laneRunner) observe(h *Histogram, totalNs, n int64, at time.Time) {
	h.recordAmortized(totalNs, n)
	r.ln.events = append(r.ln.events, tlEvent{off: at.Sub(r.runStart).Nanoseconds(), ops: r.sinceEvent + n})
	r.sinceEvent = 0
}

// flush emits the trailing unsampled ops as a final timeline event.
//
//countq:hotpath
func (r *laneRunner) flush() {
	if r.sinceEvent > 0 {
		r.ln.events = append(r.ln.events, tlEvent{off: time.Since(r.runStart).Nanoseconds(), ops: r.sinceEvent})
	}
}

// issueSync performs one synchronous draw — the gated zero-allocation hot
// path — and returns how many operations it granted.
//
//countq:hotpath clocks=6
func (r *laneRunner) issueSync() (int64, error) {
	ln := r.ln
	if r.p.Mix == 1 || (r.p.Mix > 0 && r.rng.Float64() < r.drawMix) {
		if r.batch > 1 {
			n := int64(r.batch)
			if r.hasPool && n > r.allowance {
				n = r.allowance
			}
			if len(ln.blocks)%r.sample == 0 {
				t0 := r.t0()
				first, err := r.bsess.IncN(r.ctx, n)
				t1 := time.Now()
				if err != nil {
					return 0, err
				}
				ln.blocks = append(ln.blocks, CountRange{First: first, N: n})
				r.observe(&ln.hists.c, t1.Sub(t0).Nanoseconds(), n, t1)
				if r.open {
					ln.hists.ccorr.RecordN(t1.Sub(r.intended).Nanoseconds(), n)
					r.mark = t1
				}
				return n, nil
			}
			first, err := r.bsess.IncN(r.ctx, n)
			if err != nil {
				return 0, err
			}
			ln.blocks = append(ln.blocks, CountRange{First: first, N: n})
			r.sinceEvent += n
			if r.open {
				r.mark = time.Now()
			}
			return n, nil
		}
		if len(ln.counts)%r.sample == 0 {
			t0 := r.t0()
			v, err := r.csess.Inc(r.ctx)
			t1 := time.Now()
			if err != nil {
				return 0, err
			}
			ln.counts = append(ln.counts, v)
			r.observe(&ln.hists.c, t1.Sub(t0).Nanoseconds(), 1, t1)
			if r.open {
				ln.hists.ccorr.Record(t1.Sub(r.intended).Nanoseconds())
				r.mark = t1
			}
			return 1, nil
		}
		v, err := r.csess.Inc(r.ctx)
		if err != nil {
			return 0, err
		}
		ln.counts = append(ln.counts, v)
		r.sinceEvent++
		if r.open {
			r.mark = time.Now()
		}
		return 1, nil
	}
	// 8 bits of phase, 15 of lane, 40 of draw index: distinct non-negative
	// ids across the whole run.
	id := int64(r.pi)<<55 | int64(r.gi)<<40 | int64(r.iter)
	if len(ln.ids)%r.sample == 0 {
		t0 := r.t0()
		pr, err := r.qsess.Enqueue(r.ctx, id)
		t1 := time.Now()
		if err != nil {
			return 0, err
		}
		ln.ids = append(ln.ids, id)
		ln.preds = append(ln.preds, pr)
		r.observe(&ln.hists.q, t1.Sub(t0).Nanoseconds(), 1, t1)
		if r.open {
			ln.hists.qcorr.Record(t1.Sub(r.intended).Nanoseconds())
			r.mark = t1
		}
		return 1, nil
	}
	pr, err := r.qsess.Enqueue(r.ctx, id)
	if err != nil {
		return 0, err
	}
	ln.ids = append(ln.ids, id)
	ln.preds = append(ln.preds, pr)
	r.sinceEvent++
	if r.open {
		r.mark = time.Now()
	}
	return 1, nil
}

// runSync drives the synchronous loop: one call-and-return per draw.
// acquire/release bracket each draw under the fairshare rotation and are
// nil otherwise.
//
//countq:hotpath clocks=0
func (r *laneRunner) runSync(acquire, release func()) {
	for r.iter = 0; ; r.iter++ {
		if !r.claim() {
			break
		}
		if r.open {
			r.arrive()
		}
		if acquire != nil {
			acquire()
		}
		granted, err := r.issueSync()
		if release != nil {
			release()
		}
		if err != nil {
			r.ln.err = err
			return
		}
		r.ln.issued += granted
		r.consume(granted)
	}
}

// submitOne issues one draw on the async pipeline; false means the budget
// is exhausted and nothing was submitted. Op values travel by value into
// the session's preallocated rings, so the submit path allocates nothing.
//
//countq:hotpath
func (r *laneRunner) submitOne() (bool, error) {
	if !r.claim() {
		return false, nil
	}
	var now time.Time
	if r.open {
		r.arrive()
		now = r.mark
	} else {
		now = time.Now()
	}
	op := Op{Token: uint64(r.iter), Start: now, Submitted: now}
	if r.open {
		op.Start = r.intended
	}
	n := int64(1)
	if r.p.Mix == 1 || (r.p.Mix > 0 && r.rng.Float64() < r.drawMix) {
		op.Kind, op.N = OpInc, 1
		if r.batch > 1 {
			n = int64(r.batch)
			if r.hasPool && n > r.allowance {
				n = r.allowance
			}
			op.N = n
		}
		if err := r.cas.Submit(r.ctx, op); err != nil {
			return false, err
		}
	} else {
		op.Kind = OpEnqueue
		// 8 bits of phase, 15 of lane, 40 of draw index: distinct
		// non-negative ids across the whole run.
		op.ID = int64(r.pi)<<55 | int64(r.gi)<<40 | int64(r.iter)
		if err := r.qas.Submit(r.ctx, op); err != nil {
			return false, err
		}
	}
	r.iter++
	r.outstanding++
	r.consume(n)
	return true, nil
}

// reap folds one completion into the lane's evidence and histograms.
//
//countq:hotpath
func (r *laneRunner) reap(c Completion) {
	ln := r.ln
	now := time.Now()
	switch {
	case c.Op.Kind == OpInc && c.Op.N > 1:
		ln.blocks = append(ln.blocks, CountRange{First: c.Value, N: c.Op.N})
		if len(ln.blocks)%r.sample == 1 || r.sample == 1 {
			r.observe(&ln.hists.c, now.Sub(c.Op.Submitted).Nanoseconds(), c.Op.N, now)
			ln.hists.ccorr.RecordN(now.Sub(c.Op.Start).Nanoseconds(), c.Op.N)
		} else {
			r.sinceEvent += c.Op.N
		}
		ln.issued += c.Op.N
	case c.Op.Kind == OpInc:
		ln.counts = append(ln.counts, c.Value)
		if len(ln.counts)%r.sample == 1 || r.sample == 1 {
			r.observe(&ln.hists.c, now.Sub(c.Op.Submitted).Nanoseconds(), 1, now)
			ln.hists.ccorr.Record(now.Sub(c.Op.Start).Nanoseconds())
		} else {
			r.sinceEvent++
		}
		ln.issued++
	default:
		ln.ids = append(ln.ids, c.Op.ID)
		ln.preds = append(ln.preds, c.Value)
		if len(ln.ids)%r.sample == 1 || r.sample == 1 {
			r.observe(&ln.hists.q, now.Sub(c.Op.Submitted).Nanoseconds(), 1, now)
			ln.hists.qcorr.Record(now.Sub(c.Op.Start).Nanoseconds())
		} else {
			r.sinceEvent++
		}
		ln.issued++
	}
	r.outstanding--
}

// runAsync drives the pipelined loop: keep Inflight ops outstanding,
// reaping completions as they arrive.
//
//countq:hotpath clocks=0
func (r *laneRunner) runAsync() {
	budgetDone := false
	for {
		for !budgetDone && r.outstanding < r.p.Inflight {
			ok, err := r.submitOne()
			if err != nil {
				r.ln.err = err
				return
			}
			if !ok {
				budgetDone = true
			}
		}
		if r.outstanding == 0 {
			break // budget exhausted, pipeline drained
		}
		var c Completion
		select {
		case c = <-r.cch:
		case c = <-r.qch:
		}
		if c.Err != nil {
			r.ln.err = c.Err
			return
		}
		r.reap(c)
	}
}

// runPhase spawns the phase's workers against the shared structures and
// folds their lanes into one PhaseMetrics plus the validation evidence and
// per-kind histograms (returned separately so the caller can merge them
// into the aggregate without re-binning). Each worker opens one session
// per structure before the start barrier and issues every operation
// through it — synchronously, or as an Inflight-deep pipeline of
// Submit/Completions when the phase asks for one.
func runPhase(cs, qs Structure, base Workload, pi int, p Phase, runStart time.Time) (PhaseMetrics, laneData, *phaseHists, error) {
	batch := p.Batch
	if p.Mix == 0 {
		batch = 0
	}
	// Each batched draw grants `batch` counter operations at once, so the
	// per-draw counter probability must shrink for Mix to stay the
	// fraction of *operations* that count: solving
	// p·batch / (p·batch + (1-p)) = mix for p.
	drawMix := p.Mix
	if batch > 1 && p.Mix > 0 && p.Mix < 1 {
		drawMix = p.Mix / (float64(batch)*(1-p.Mix) + p.Mix)
	}
	chunk := int64(opsChunk)
	if int64(batch) > chunk {
		chunk = int64(batch)
	}
	var pool atomic.Int64
	pool.Store(int64(p.Ops))
	hasPool := p.Ops > 0
	lanes := make([]lane, p.Goroutines)
	// The fairshare rotation: turn hands the grant around round-robin, and
	// a worker that finishes (or fails) marks itself done so waiters can
	// skip its turns instead of deadlocking.
	var turn atomic.Int64
	var fairDone []atomic.Bool
	if p.Arrival == Fairshare {
		fairDone = make([]atomic.Bool, p.Goroutines)
	}
	// Per-lane initial evidence reservation: the balanced share of an ops
	// budget, or one claim stride under a duration budget. Claims during the
	// phase top this up, so steady state appends never allocate.
	share := int64(opsChunk)
	if hasPool {
		share = int64(p.Ops)/int64(p.Goroutines) + opsChunk
	}
	// Workers rendezvous on a start barrier so spawn latency (and session
	// setup, rng construction, evidence preallocation) is neither measured
	// nor lets early workers drain the shared pool before late ones exist
	// (which would read as unfairness the structure didn't cause).
	var ready, wg sync.WaitGroup
	start := make(chan struct{})
	var phaseStart time.Time
	var dl *phaseDeadline
	probe := newMemProbe()
	ctx := context.Background()
	for gi := 0; gi < p.Goroutines; gi++ {
		ready.Add(1)
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ln := &lanes[gi]
			if fairDone != nil {
				defer fairDone[gi].Store(true)
			}
			// Open the per-worker sessions before the barrier; their
			// Close (surrendering leases, draining async buffers) runs
			// before the phase is folded.
			var csess, qsess Session
			if cs != nil {
				csess, ln.err = cs.NewSession()
			}
			if ln.err == nil && qs != nil {
				qsess, ln.err = qs.NewSession()
			}
			defer func() {
				for _, s := range []Session{csess, qsess} {
					if s == nil {
						continue
					}
					if err := s.Close(); err != nil && ln.err == nil {
						ln.err = fmt.Errorf("countq: phase %q: session close: %w", p.Name, err)
					}
				}
			}()
			r := &laneRunner{
				ln:       ln,
				p:        &p,
				pi:       pi,
				gi:       gi,
				csess:    csess,
				qsess:    qsess,
				ctx:      ctx,
				batch:    batch,
				drawMix:  drawMix,
				sample:   p.LatencySample,
				chunk:    chunk,
				open:     p.Arrival == Uniform || p.Arrival == Bursty,
				hasPool:  hasPool,
				pool:     &pool,
				runStart: runStart,
			}
			if ln.err == nil && batch > 1 {
				b, ok := csess.(BatchSession)
				if !ok {
					ln.err = fmt.Errorf("countq: phase %q: counter %q declares CapBatch but its session is not a BatchSession", p.Name, base.Counter)
				}
				r.bsess = b
			}
			if ln.err == nil && p.Inflight > 1 {
				if csess != nil && p.Mix > 0 {
					a, ok := csess.(AsyncSession)
					if !ok {
						ln.err = fmt.Errorf("countq: phase %q: counter %q declares CapAsync but its session is not an AsyncSession", p.Name, base.Counter)
					} else {
						r.cas, r.cch = a, a.Completions()
					}
				}
				if ln.err == nil && qsess != nil && p.Mix < 1 {
					a, ok := qsess.(AsyncSession)
					if !ok {
						ln.err = fmt.Errorf("countq: phase %q: queue %q declares CapAsync but its session is not an AsyncSession", p.Name, base.Queue)
					} else {
						r.qas, r.qch = a, a.Completions()
					}
				}
			}
			var acquire, release func()
			if p.Arrival == Fairshare {
				acquire = func() {
					g := int64(p.Goroutines)
					for {
						t := turn.Load()
						owner := int(t % g)
						if owner == gi {
							return
						}
						if fairDone[owner].Load() {
							turn.CompareAndSwap(t, t+1)
							continue
						}
						runtime.Gosched()
					}
				}
				release = func() { turn.Add(1) }
			}
			if ln.err == nil {
				r.rng = rand.New(rand.NewSource(base.Seed + int64(pi)*104729 + int64(gi)*7919))
				r.reserve(share)
			}
			ready.Done()
			<-start
			if ln.err != nil {
				return
			}
			r.dl = dl
			r.begin(phaseStart)
			if p.Inflight > 1 {
				r.runAsync()
			} else {
				r.runSync(acquire, release)
			}
			r.flush()
		}(gi)
	}
	ready.Wait()
	phaseStart = time.Now()
	if p.Duration > 0 {
		dl = startDeadline(p.Duration) // workers observe this via the start barrier
	}
	startNs := phaseStart.Sub(runStart).Nanoseconds()
	// The phase's memory accounting brackets exactly the measured window:
	// the sampler (and its buffers) exist before the baseline read, and
	// worker setup allocations all happened before the barrier.
	sampler := startMemSampler(phaseStart)
	allocs0, bytes0, _ := probe.read()
	close(start)
	wg.Wait()
	elapsed := time.Since(phaseStart)
	allocs1, bytes1, _ := probe.read()
	memTl := sampler.stop(startNs, elapsed.Nanoseconds())
	dl.stop()

	var data laneData
	var hists phaseHists
	var events []tlEvent
	workers := make([]int64, p.Goroutines)
	for gi := range lanes {
		if err := lanes[gi].err; err != nil {
			return PhaseMetrics{}, laneData{}, nil, fmt.Errorf("countq: phase %q: %w", p.Name, err)
		}
		data.merge(&lanes[gi].laneData)
		hists.merge(&lanes[gi].hists)
		events = append(events, lanes[gi].events...)
		workers[gi] = lanes[gi].issued
	}
	counterOps := len(data.counts)
	for _, b := range data.blocks {
		counterOps += int(b.N)
	}
	queueOps := len(data.ids)
	var allocsPerOp, allocBytesPerOp float64
	if ops := counterOps + queueOps; ops > 0 {
		allocsPerOp = float64(allocs1-allocs0) / float64(ops)
		allocBytesPerOp = float64(bytes1-bytes0) / float64(ops)
	}
	pm := PhaseMetrics{
		Name:        p.Name,
		Warmup:      p.Warmup,
		Goroutines:  p.Goroutines,
		Mix:         p.Mix,
		Arrival:     p.Arrival.String(),
		Batch:       batch,
		Inflight:    p.Inflight,
		StartNs:     startNs,
		Elapsed:     elapsed,
		Ops:         counterOps + queueOps,
		CounterOps:  counterOps,
		QueueOps:    queueOps,
		CounterLat:  hists.c.Stats(),
		QueueLat:    hists.q.Stats(),
		CounterCorr: hists.ccorr.Stats(),
		QueueCorr:   hists.qcorr.Stats(),
		Timeline:    buildTimeline(events, startNs, elapsed.Nanoseconds()),
		WorkerOps:   workers,
		Fairness:    fairness(workers),

		AllocsPerOp:     allocsPerOp,
		AllocBytesPerOp: allocBytesPerOp,
		MemTimeline:     memTl,
		LivePeakBytes:   peakMem(memTl),
	}
	return pm, data, &hists, nil
}

// fairness is min/max over per-worker op counts: 1 is perfectly fair, 0
// means some worker was fully starved. A phase where nothing ran at all is
// vacuously fair.
func fairness(workers []int64) float64 {
	if len(workers) == 0 {
		return 1
	}
	min, max := workers[0], workers[0]
	for _, w := range workers[1:] {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return 1
	}
	return float64(min) / float64(max)
}
