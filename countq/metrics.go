package countq

import "time"

// LatencyStats summarizes the sampled latency distribution of one
// operation kind: log-bucketed histogram quantiles plus the exact mean and
// maximum. Samples counts the operations the timings cover (a timed
// IncN block contributes its whole grant at the amortized per-count cost).
type LatencyStats struct {
	Samples int64   `json:"samples"`
	MeanNs  float64 `json:"mean_ns"`
	P50Ns   float64 `json:"p50_ns"`
	P90Ns   float64 `json:"p90_ns"`
	P99Ns   float64 `json:"p99_ns"`
	P999Ns  float64 `json:"p999_ns"`
	MaxNs   float64 `json:"max_ns"`
}

// Window is one slot of the throughput timeline: how many operations
// completed in [StartNs, EndNs), offsets relative to the start of the run.
// An empty window is a stall, not a gap in the record.
type Window struct {
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	Ops     int64 `json:"ops"`
}

// OpsPerSec reports the window's throughput in operations per second.
func (w Window) OpsPerSec() float64 {
	if w.EndNs <= w.StartNs {
		return 0
	}
	return float64(w.Ops) * 1e9 / float64(w.EndNs-w.StartNs)
}

// MemWindow is one slot of the live-heap timeline: the peak live heap
// observed in [StartNs, EndNs), offsets relative to the start of the run.
// Windows share the phase span (and slot count) with the throughput
// timeline, so footprint and throughput line up window for window.
type MemWindow struct {
	StartNs   int64 `json:"start_ns"`
	EndNs     int64 `json:"end_ns"`
	PeakBytes int64 `json:"peak_bytes"`
}

// PhaseMetrics reports one phase of a run: the shape it ran under, exact
// op totals, sampled latency distributions per kind, a windowed throughput
// timeline, memory footprint, and per-worker op counts with the fairness
// ratio they imply.
type PhaseMetrics struct {
	Name       string        `json:"name"`
	Warmup     bool          `json:"warmup,omitempty"`
	Goroutines int           `json:"goroutines"`
	Mix        float64       `json:"mix"`
	Arrival    string        `json:"arrival"`
	Batch      int           `json:"batch,omitempty"`
	Inflight   int           `json:"inflight,omitempty"`
	StartNs    int64         `json:"start_ns"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Ops        int           `json:"ops"`
	CounterOps int           `json:"counter_ops"`
	QueueOps   int           `json:"queue_ops"`
	CounterLat *LatencyStats `json:"counter_latency,omitempty"`
	QueueLat   *LatencyStats `json:"queue_latency,omitempty"`
	// CounterCorr and QueueCorr are the coordinated-omission-corrected
	// latency distributions: completion time measured against the
	// *intended* start from the arrival schedule, so an operation delayed
	// behind a slow predecessor is charged the backlog it actually
	// suffered. Recorded under open-loop arrivals (uniform, bursty) and on
	// the async (Inflight > 1) path; nil for plain closed loops, where
	// intended and actual starts coincide and the service-time
	// distributions above already tell the whole story.
	CounterCorr *LatencyStats `json:"counter_corrected,omitempty"`
	QueueCorr   *LatencyStats `json:"queue_corrected,omitempty"`
	Timeline    []Window      `json:"timeline,omitempty"`
	// AllocsPerOp and AllocBytesPerOp are the process-wide heap allocation
	// deltas across the phase, divided by its op count — the footprint the
	// structure (plus the allocation-free measurement path around it) costs
	// per operation. Always emitted, because 0 is the interesting value.
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
	// MemTimeline is the live-heap timeline sampled during the phase, folded
	// into the same windows as Timeline; LivePeakBytes is its maximum.
	MemTimeline   []MemWindow `json:"mem_timeline,omitempty"`
	LivePeakBytes int64       `json:"live_peak_bytes,omitempty"`
	// WorkerOps is how many operations each worker completed. The op
	// budget is a shared pool, so a worker the structure starves shows up
	// here instead of being hidden by a preassigned per-worker quota.
	WorkerOps []int64 `json:"worker_ops,omitempty"`
	// Fairness is min/max over WorkerOps: 1 is perfectly fair service,
	// values near 0 mean some worker was starved. 1 when trivially fair
	// (a single worker).
	Fairness float64 `json:"fairness"`
}

// NsPerOp reports the phase's average wall nanoseconds per operation.
func (p *PhaseMetrics) NsPerOp() float64 {
	if p.Ops == 0 {
		return 0
	}
	return float64(p.Elapsed.Nanoseconds()) / float64(p.Ops)
}

// OpsPerSec reports the phase's throughput in operations per second.
func (p *PhaseMetrics) OpsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Ops) / p.Elapsed.Seconds()
}

// Aggregate folds the measured (non-warmup) phases of a run together:
// summed op totals and elapsed time, merged latency histograms, the
// concatenated throughput timeline, and the worst per-phase fairness.
type Aggregate struct {
	Ops        int           `json:"ops"`
	CounterOps int           `json:"counter_ops"`
	QueueOps   int           `json:"queue_ops"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	CounterLat *LatencyStats `json:"counter_latency,omitempty"`
	QueueLat   *LatencyStats `json:"queue_latency,omitempty"`
	// CounterCorr and QueueCorr merge the per-phase corrected
	// distributions (see PhaseMetrics); nil when no measured phase
	// recorded one.
	CounterCorr *LatencyStats `json:"counter_corrected,omitempty"`
	QueueCorr   *LatencyStats `json:"queue_corrected,omitempty"`
	Timeline    []Window      `json:"timeline,omitempty"`
	// AllocsPerOp and AllocBytesPerOp are the op-weighted means over the
	// measured phases; MemTimeline concatenates the per-phase live-heap
	// windows and LivePeakBytes is the peak across them.
	AllocsPerOp     float64     `json:"allocs_per_op"`
	AllocBytesPerOp float64     `json:"alloc_bytes_per_op"`
	MemTimeline     []MemWindow `json:"mem_timeline,omitempty"`
	LivePeakBytes   int64       `json:"live_peak_bytes,omitempty"`
	Fairness        float64     `json:"fairness"`
}

// NsPerOp reports average wall nanoseconds per measured operation.
func (a *Aggregate) NsPerOp() float64 {
	if a.Ops == 0 {
		return 0
	}
	return float64(a.Elapsed.Nanoseconds()) / float64(a.Ops)
}

// OpsPerSec reports the aggregate throughput in operations per second
// over the measured phases.
func (a *Aggregate) OpsPerSec() float64 {
	if a.Elapsed <= 0 {
		return 0
	}
	return float64(a.Ops) / a.Elapsed.Seconds()
}

// PickLatency returns the preferred latency record of an op-kind pair:
// the counter side when present (the paper's expensive side), else the
// queue side, else nil. The table renderers and exports share it so every
// surface picks the same record.
func PickLatency(counter, queue *LatencyStats) *LatencyStats {
	if counter != nil {
		return counter
	}
	return queue
}

// Metrics reports one driver run. Counts (including block grants) and
// predecessor chains have already been validated — once, across all phases
// — when Run returns it. Phases holds the per-phase record in run order
// (warmup included, flagged); Aggregate folds the measured phases.
type Metrics struct {
	Counter    string         `json:"counter,omitempty"`
	Queue      string         `json:"queue,omitempty"`
	Scenario   string         `json:"scenario,omitempty"`
	Goroutines int            `json:"goroutines"` // peak across phases
	Seed       int64          `json:"seed"`
	Elapsed    time.Duration  `json:"elapsed_ns"` // whole run, warmup included
	Phases     []PhaseMetrics `json:"phases"`
	Aggregate  Aggregate      `json:"aggregate"`
}

// NsPerOp reports average wall nanoseconds per measured operation.
func (m *Metrics) NsPerOp() float64 { return m.Aggregate.NsPerOp() }

// tlEvent is one worker-local throughput observation: ops operations
// completed by offset off (ns from run start) since the previous event.
type tlEvent struct {
	off int64
	ops int64
}

// timelineWindows is how many slots a phase's throughput timeline has.
const timelineWindows = 16

// buildTimeline folds worker-local completion events into fixed windows
// spanning the phase. Events carry the ops completed since the previous
// sampled op, so window totals are exact in sum and accurate to one
// sampling interval in placement.
func buildTimeline(events []tlEvent, startNs, elapsedNs int64) []Window {
	if elapsedNs <= 0 || len(events) == 0 {
		return nil
	}
	n := int64(timelineWindows)
	dur := elapsedNs / n
	if dur <= 0 {
		n, dur = 1, elapsedNs
	}
	win := make([]Window, n)
	for i := range win {
		win[i].StartNs = startNs + int64(i)*dur
		win[i].EndNs = win[i].StartNs + dur
	}
	win[n-1].EndNs = startNs + elapsedNs // absorb the integer-division remainder
	for _, ev := range events {
		idx := (ev.off - startNs) / dur
		if idx < 0 {
			idx = 0
		} else if idx >= n {
			idx = n - 1
		}
		win[idx].Ops += ev.ops
	}
	return win
}
