// Conformance suite for the session API: every structure registered by
// the real backends (the shared-memory zoo and the sim bridge) is driven
// through the session layer — sync, handle, batch and async paths — under
// the race detector, and its validation outcome is checked against the
// legacy-interface path where one exists. External test package so it can
// import the registering packages without a cycle.
package countq_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/countq"
	_ "repro/internal/arrow"    // registers sim-arrow-queue
	_ "repro/internal/counting" // registers sim-tree-counter
	"repro/internal/shm"
	"repro/internal/sim"
)

// Keep the zoo and the bridges registered (all self-register on import).
var (
	_ = shm.VariantSpecs
	_ = sim.BridgeConfig{}
)

// conformanceSpec returns the spec the suite drives a structure with:
// defaults for the zoo, a free-running network for the bridge so the suite
// measures correctness, not hop latency.
func conformanceSpec(info countq.StructureInfo) string {
	if strings.HasPrefix(info.Name, "sim-") {
		return info.Name + "?hoplat=0"
	}
	return info.Name
}

// TestSessionConformance drives every registered structure through the
// workload driver's session paths. Each path ends in the driver's own
// validation pass (counts gap-free, predecessors one total order), so a
// pass here proves the session adapters preserve every structure's
// correctness contract.
func TestSessionConformance(t *testing.T) {
	for _, info := range countq.Structures() {
		info := info
		t.Run(fmt.Sprintf("%s-%s", info.Name, info.Kinds), func(t *testing.T) {
			t.Parallel()
			spec := conformanceSpec(info)
			base := countq.Workload{Goroutines: 4, Ops: 1200, Seed: 1}
			if info.Kinds.Has(countq.KindCounter) {
				base.Counter = spec
			} else {
				base.Queue = spec
			}
			paths := []countq.Workload{base}
			if info.Caps.Has(countq.CapBatch) {
				w := base
				w.Batch = 16
				paths = append(paths, w)
			}
			if info.Caps.Has(countq.CapAsync) {
				w := base
				w.Inflight = 8
				paths = append(paths, w)
			}
			for _, w := range paths {
				m, err := countq.Run(w)
				if err != nil {
					t.Errorf("driver path %+v: %v", w, err)
					continue
				}
				if m.Aggregate.Ops != w.Ops {
					t.Errorf("driver path %+v: ops = %d, want %d", w, m.Aggregate.Ops, w.Ops)
				}
			}
		})
	}
}

// TestSessionMatchesLegacyValidation drives each counter structure twice
// with the same shape — once through sessions, once through the legacy
// Counter interface directly — and asserts the two paths reach the same
// validation verdict. HandleMaker counters exercise their handles on the
// legacy side, exactly as the pre-session driver did.
func TestSessionMatchesLegacyValidation(t *testing.T) {
	const workers, perWorker = 4, 64
	for _, info := range countq.Structures() {
		if !info.Kinds.Has(countq.KindCounter) {
			continue
		}
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			spec := conformanceSpec(info)

			// Session path, driven by hand (not via Run) so the suite
			// checks the session layer itself, not just the driver.
			st, err := countq.NewStructure(spec, countq.KindCounter)
			if err != nil {
				t.Fatal(err)
			}
			defer closeIfCloser(st)
			var mu0 sync.Mutex
			var sessionCounts []int64
			var wg0 sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg0.Add(1)
				go func() {
					defer wg0.Done()
					sess, err := st.NewSession()
					if err != nil {
						t.Error(err)
						return
					}
					defer sess.Close()
					local := make([]int64, 0, perWorker)
					for i := 0; i < perWorker; i++ {
						v, err := sess.Inc(context.Background())
						if err != nil {
							t.Error(err)
							return
						}
						local = append(local, v)
					}
					mu0.Lock()
					sessionCounts = append(sessionCounts, local...)
					mu0.Unlock()
				}()
			}
			wg0.Wait()
			sessionCounts = append(sessionCounts, countq.DrainCounts(st)...)
			sessionErr := countq.ValidateCounts(sessionCounts)

			// Legacy path, when the structure has a synchronous view.
			legacy, err := countq.NewCounter(spec)
			if err != nil {
				// Native session structures have no legacy path; the
				// session verdict stands alone but must be clean.
				if sessionErr != nil {
					t.Errorf("session path failed validation: %v", sessionErr)
				}
				return
			}
			var legacyCounts []int64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					inc := legacy.Inc
					var closeHandle func()
					if hm, ok := legacy.(countq.HandleMaker); ok {
						h := hm.NewHandle()
						inc, closeHandle = h.Inc, h.Close
					}
					local := make([]int64, 0, perWorker)
					for i := 0; i < perWorker; i++ {
						local = append(local, inc())
					}
					if closeHandle != nil {
						closeHandle()
					}
					mu.Lock()
					legacyCounts = append(legacyCounts, local...)
					mu.Unlock()
				}()
			}
			wg.Wait()
			if d, ok := legacy.(countq.Drainer); ok {
				legacyCounts = append(legacyCounts, d.Drain()...)
			}
			legacyErr := countq.ValidateCounts(legacyCounts)

			if (sessionErr == nil) != (legacyErr == nil) {
				t.Errorf("validation verdicts diverge: session %v, legacy %v", sessionErr, legacyErr)
			}
			if sessionErr != nil {
				t.Errorf("session path failed validation: %v", sessionErr)
			}
		})
	}
}

func closeIfCloser(st countq.Structure) {
	if c, ok := st.(interface{ Close() error }); ok {
		c.Close()
	}
}

// TestSessionCloseSurrendersLeases pins the handle-lifting contract: a
// HandleMaker counter driven through sessions must, after every session is
// closed, drain to a gap-free range — the per-session lease remainder is
// surrendered by Session.Close exactly as CounterHandle.Close did.
func TestSessionCloseSurrendersLeases(t *testing.T) {
	st, err := countq.NewStructure("sharded?shards=4&batch=16", countq.KindCounter)
	if err != nil {
		t.Fatal(err)
	}
	var counts []int64
	for s := 0; s < 3; s++ {
		sess, err := st.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ { // 10 < 16: a remainder stays leased
			v, err := sess.Inc(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, v)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}
	counts = append(counts, countq.DrainCounts(st)...)
	if err := countq.ValidateCounts(counts); err != nil {
		t.Fatalf("drained counts invalid: %v", err)
	}
}

// TestAsyncSessionContextCancellation pins the AsyncSession cancellation
// contract for every async-capable structure: a cancelled context is
// refused at Submit and at the synchronous entry points, and the session
// keeps working afterwards.
func TestAsyncSessionContextCancellation(t *testing.T) {
	for _, info := range countq.Structures() {
		if !info.Caps.Has(countq.CapAsync) {
			continue
		}
		info := info
		t.Run(info.Name, func(t *testing.T) {
			kind := countq.KindCounter
			op := countq.Op{Kind: countq.OpInc, N: 1}
			if !info.Kinds.Has(countq.KindCounter) {
				kind = countq.KindQueue
				op = countq.Op{Kind: countq.OpEnqueue, ID: 7}
			}
			st, err := countq.NewStructure(conformanceSpec(info), kind)
			if err != nil {
				t.Fatal(err)
			}
			defer closeIfCloser(st)
			sess, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			as, ok := sess.(countq.AsyncSession)
			if !ok {
				t.Fatalf("structure %s declares CapAsync but its session is not an AsyncSession", info.Name)
			}
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if err := as.Submit(cancelled, op); err == nil {
				t.Error("Submit with a cancelled context accepted")
			}
			if kind == countq.KindCounter {
				if _, err := sess.Inc(cancelled); err == nil {
					t.Error("Inc with a cancelled context accepted")
				}
			} else {
				if _, err := sess.Enqueue(cancelled, 9); err == nil {
					t.Error("Enqueue with a cancelled context accepted")
				}
			}
			// The session survives refused submissions: one live round trip.
			if err := as.Submit(context.Background(), op); err != nil {
				t.Fatalf("live Submit after cancelled attempts: %v", err)
			}
			c := <-as.Completions()
			if c.Err != nil {
				t.Fatalf("completion after cancelled attempts: %v", c.Err)
			}
		})
	}
}

// TestSessionKindGating pins ErrUnsupported: the wrong op kind on a
// single-kind structure's session reports the sentinel, for every
// registered structure.
func TestSessionKindGating(t *testing.T) {
	for _, info := range countq.Structures() {
		if info.Kinds.Has(countq.KindCounter) && info.Kinds.Has(countq.KindQueue) {
			continue // dual-kind structures gate nothing
		}
		info := info
		t.Run(info.Name, func(t *testing.T) {
			kind := countq.KindCounter
			if !info.Kinds.Has(countq.KindCounter) {
				kind = countq.KindQueue
			}
			st, err := countq.NewStructure(conformanceSpec(info), kind)
			if err != nil {
				t.Fatal(err)
			}
			defer closeIfCloser(st)
			sess, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			if kind == countq.KindCounter {
				_, err = sess.Enqueue(context.Background(), 1)
			} else {
				_, err = sess.Inc(context.Background())
			}
			if err == nil {
				t.Fatal("wrong-kind operation accepted")
			}
			if !strings.Contains(err.Error(), countq.ErrUnsupported.Error()) {
				t.Errorf("wrong-kind error does not wrap ErrUnsupported: %v", err)
			}
		})
	}
}

// TestRegistryV3Catalogue pins the registry-wide invariants the CLI and
// the benches rely on: every legacy listing entry appears among the
// structures with the right kind, declared caps match the probeable
// capability interfaces, and the sim bridge is registered async-capable.
func TestRegistryV3Catalogue(t *testing.T) {
	for _, ci := range countq.Counters() {
		info, ok := countq.LookupStructure(ci.Name, countq.KindCounter)
		if !ok {
			t.Errorf("legacy counter %q missing from the structure registry", ci.Name)
			continue
		}
		c, err := ci.New(countq.Options{})
		if err != nil {
			t.Errorf("%s: %v", ci.Name, err)
			continue
		}
		_, isBatch := c.(countq.BatchIncrementer)
		if info.Caps.Has(countq.CapBatch) != isBatch {
			t.Errorf("%s: CapBatch=%v but BatchIncrementer=%v", ci.Name, info.Caps.Has(countq.CapBatch), isBatch)
		}
		_, isHandle := c.(countq.HandleMaker)
		if info.Caps.Has(countq.CapHandle) != isHandle {
			t.Errorf("%s: CapHandle=%v but HandleMaker=%v", ci.Name, info.Caps.Has(countq.CapHandle), isHandle)
		}
	}
	for _, qi := range countq.Queues() {
		if _, ok := countq.LookupStructure(qi.Name, countq.KindQueue); !ok {
			t.Errorf("legacy queue %q missing from the structure registry", qi.Name)
		}
	}
	for _, name := range []string{"sim-counter", "sim-queue"} {
		kind := countq.KindCounter
		if name == "sim-queue" {
			kind = countq.KindQueue
		}
		info, ok := countq.LookupStructure(name, kind)
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		if !info.Caps.Has(countq.CapAsync) {
			t.Errorf("%s does not declare CapAsync", name)
		}
	}
	// The name "mutex" is registered on both sides; the kind disambiguates.
	if _, ok := countq.LookupStructure("mutex", countq.KindCounter); !ok {
		t.Error("mutex counter not found")
	}
	if _, ok := countq.LookupStructure("mutex", countq.KindQueue); !ok {
		t.Error("mutex queue not found")
	}
}
