package countq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec names a registered structure together with its construction
// parameters, parsed from the DSN-style string form "name" or
// "name?param=value&param=value" (database/sql style). The zero Spec is
// invalid; build one with ParseSpec or a Spec literal plus With.
type Spec struct {
	// Name is the registry key (e.g. "sharded").
	Name string
	// Options carries the parameters; the zero value means all defaults.
	Options Options
}

// ParseSpec parses "name" or "name?k=v&k2=v2" into a Spec. Keys must be
// non-empty and distinct; values are kept verbatim (no URL escaping — the
// registry's parameters are simple numeric and boolean tokens).
func ParseSpec(s string) (Spec, error) {
	name, query, hasQuery := strings.Cut(s, "?")
	if name == "" {
		return Spec{}, fmt.Errorf("countq: spec %q has no structure name", s)
	}
	sp := Spec{Name: name}
	if !hasQuery || query == "" {
		return sp, nil
	}
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return Spec{}, fmt.Errorf("countq: spec %q: malformed parameter %q (want key=value)", s, kv)
		}
		if _, dup := sp.Options.Lookup(k); dup {
			return Spec{}, fmt.Errorf("countq: spec %q: parameter %q given twice", s, k)
		}
		sp.Options.Set(k, v)
	}
	return sp, nil
}

// String renders the spec in its canonical parseable form: the name alone
// when every parameter is defaulted, otherwise "name?k=v&…" with keys
// sorted.
func (s Spec) String() string {
	keys := s.Options.Keys()
	if len(keys) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte('?')
		} else {
			b.WriteByte('&')
		}
		v, _ := s.Options.Lookup(k)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	return b.String()
}

// With returns a copy of the spec with one parameter set (replacing any
// existing value). The receiver is not modified, so a base spec can fan
// out into a sweep: base.With("batch", "64"), base.With("batch", "256"), …
func (s Spec) With(key, value string) Spec {
	out := Spec{Name: s.Name}
	for _, k := range s.Options.Keys() {
		v, _ := s.Options.Lookup(k)
		out.Options.Set(k, v)
	}
	out.Options.Set(key, value)
	return out
}

// Options is a bag of string parameters with typed getters. Getters return
// the given default when the key is absent and record the first conversion
// failure, so a constructor reads every parameter and then checks Err once:
//
//	shards := o.Int("shards", 0)
//	batch := o.Int64("batch", 64)
//	if err := o.Err(); err != nil {
//		return nil, err
//	}
//
// The zero Options is ready to use and means "all defaults".
type Options struct {
	vals map[string]string
	err  error
}

// Set records a parameter, replacing any previous value for the key.
func (o *Options) Set(key, value string) {
	if o.vals == nil {
		o.vals = make(map[string]string)
	}
	o.vals[key] = value
}

// Lookup reports the raw value for key and whether it was set.
func (o *Options) Lookup(key string) (string, bool) {
	v, ok := o.vals[key]
	return v, ok
}

// Keys returns the set parameter names, sorted.
func (o *Options) Keys() []string {
	keys := make([]string, 0, len(o.vals))
	for k := range o.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len reports how many parameters are set.
func (o *Options) Len() int { return len(o.vals) }

// Err returns the first typed-getter conversion failure, or nil.
func (o *Options) Err() error { return o.err }

func (o *Options) fail(key, value, want string) {
	if o.err == nil {
		o.err = fmt.Errorf("countq: param %s=%q is not %s", key, value, want)
	}
}

// Int reads key as an int, or def when absent.
func (o *Options) Int(key string, def int) int {
	v, ok := o.vals[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		o.fail(key, v, "an integer")
		return def
	}
	return n
}

// Int64 reads key as an int64, or def when absent.
func (o *Options) Int64(key string, def int64) int64 {
	v, ok := o.vals[key]
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		o.fail(key, v, "an integer")
		return def
	}
	return n
}

// Float64 reads key as a float64, or def when absent.
func (o *Options) Float64(key string, def float64) float64 {
	v, ok := o.vals[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		o.fail(key, v, "a number")
		return def
	}
	return f
}

// Duration reads key as a time.Duration ("1us", "2ms"), or def when
// absent. Bare "0" is accepted (no unit needed for zero).
func (o *Options) Duration(key string, def time.Duration) time.Duration {
	v, ok := o.vals[key]
	if !ok {
		return def
	}
	if v == "0" {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		o.fail(key, v, "a duration (e.g. 1us, 2ms)")
		return def
	}
	return d
}

// String reads key verbatim, or def when absent.
func (o *Options) String(key, def string) string {
	v, ok := o.vals[key]
	if !ok {
		return def
	}
	return v
}

// Bool reads key as a bool ("true"/"false"/"1"/"0"), or def when absent.
func (o *Options) Bool(key string, def bool) bool {
	v, ok := o.vals[key]
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		o.fail(key, v, "a boolean")
		return def
	}
	return b
}

// ParamInfo declares one construction parameter of a registered structure:
// its spec key, the value used when the spec omits it, and a one-line doc.
// The registry rejects spec parameters that no ParamInfo declares, and
// `countq list -v` prints the declarations, so the set is load-bearing,
// not documentation-only.
type ParamInfo struct {
	Name    string
	Default string
	Doc     string
}

// checkParams rejects option keys that the declared parameter set does not
// cover — the unknown-key half of the spec contract (typos fail loudly
// instead of silently running at defaults).
func checkParams(kind, name string, o Options, params []ParamInfo) error {
	for _, k := range o.Keys() {
		known := false
		for _, p := range params {
			if p.Name == k {
				known = true
				break
			}
		}
		if !known {
			declared := make([]string, len(params))
			for i, p := range params {
				declared[i] = p.Name
			}
			return fmt.Errorf("countq: %s %q has no param %q (declared: %v)", kind, name, k, declared)
		}
	}
	return nil
}
