package countq

import (
	"fmt"
	"time"
)

// The canonical scenario library. Each scenario is a registry-v2 entry:
// declared params, unknown keys rejected, self-documenting via
// `countq scenarios -v`. They exist because a flat closed-loop average is
// exactly the measurement that hides the counting-versus-queuing gap:
// quiescently consistent counters look fine on means while ramps, spikes
// and mix shifts expose the tail, timeline and fairness pathologies the
// paper's per-operation lower bound predicts.
func init() {
	RegisterScenario(ScenarioInfo{
		Name:    "steady",
		Summary: "warmup then one steady measured phase at the base shape",
		Params: []ParamInfo{
			{Name: "warmup", Default: "0.1", Doc: "fraction of the budget spent warming up (0 skips the warmup phase)"},
		},
		Phases: func(base Workload, o Options) ([]Phase, error) {
			frac := o.Float64("warmup", 0.1)
			if err := o.Err(); err != nil {
				return nil, err
			}
			if frac < 0 || frac > 0.9 {
				return nil, fmt.Errorf("warmup fraction %v outside [0, 0.9]", frac)
			}
			if frac == 0 {
				phases := []Phase{basePhase(base, "measure")}
				return assignBudgets(base, phases, []float64{1})
			}
			phases := []Phase{basePhase(base, "warmup"), basePhase(base, "measure")}
			phases[0].Warmup = true
			return assignBudgets(base, phases, []float64{frac, 1 - frac})
		},
	})

	RegisterScenario(ScenarioInfo{
		Name:    "ramp",
		Summary: "goroutine ramp: contention doubles 1 → gmax across equal-budget phases",
		Params: []ParamInfo{
			{Name: "gmax", Default: "0", Doc: "contention ceiling (0 = the base workload's goroutine count)"},
		},
		Phases: func(base Workload, o Options) ([]Phase, error) {
			gmax := o.Int("gmax", 0)
			if err := o.Err(); err != nil {
				return nil, err
			}
			if gmax == 0 {
				gmax = base.Goroutines
			}
			if gmax < 1 {
				return nil, fmt.Errorf("gmax %d must be ≥ 1", gmax)
			}
			var phases []Phase
			var weights []float64
			for g := 1; ; g *= 2 {
				if g > gmax {
					g = gmax
				}
				p := basePhase(base, fmt.Sprintf("g=%d", g))
				p.Goroutines = g
				phases = append(phases, p)
				weights = append(weights, 1)
				if g == gmax {
					break
				}
			}
			return assignBudgets(base, phases, weights)
		},
	})

	RegisterScenario(ScenarioInfo{
		Name:    "spike",
		Summary: "bursty alternation: closed-loop spike phases alternating with uniform calm phases",
		Params: []ParamInfo{
			{Name: "cycles", Default: "3", Doc: "number of spike/calm cycles"},
		},
		Phases: func(base Workload, o Options) ([]Phase, error) {
			cycles := o.Int("cycles", 3)
			if err := o.Err(); err != nil {
				return nil, err
			}
			if cycles < 1 {
				return nil, fmt.Errorf("cycles %d must be ≥ 1", cycles)
			}
			var phases []Phase
			var weights []float64
			for i := 1; i <= cycles; i++ {
				spike := basePhase(base, fmt.Sprintf("spike-%d", i))
				spike.Arrival = Closed
				calm := basePhase(base, fmt.Sprintf("calm-%d", i))
				calm.Arrival = Uniform
				phases = append(phases, spike, calm)
				weights = append(weights, 1, 1)
			}
			return assignBudgets(base, phases, weights)
		},
	})

	RegisterScenario(ScenarioInfo{
		Name:    "mixshift",
		Summary: "operation-mix shift: pure queuing → pure counting in equal steps",
		Params: []ParamInfo{
			{Name: "steps", Default: "5", Doc: "number of mix steps from 0 (all enqueue) to 1 (all count)"},
		},
		Phases: func(base Workload, o Options) ([]Phase, error) {
			steps := o.Int("steps", 5)
			if err := o.Err(); err != nil {
				return nil, err
			}
			if steps < 2 {
				return nil, fmt.Errorf("steps %d must be ≥ 2", steps)
			}
			if base.Counter == "" || base.Queue == "" {
				return nil, fmt.Errorf("mixshift needs both a counter and a queue (got counter %q, queue %q)", base.Counter, base.Queue)
			}
			var phases []Phase
			var weights []float64
			for i := 0; i < steps; i++ {
				mix := float64(i) / float64(steps-1)
				p := basePhase(base, fmt.Sprintf("mix=%.2f", mix))
				p.Mix = mix
				phases = append(phases, p)
				weights = append(weights, 1)
			}
			return assignBudgets(base, phases, weights)
		},
	})

	RegisterScenario(ScenarioInfo{
		Name:    "batched",
		Summary: "batch toggle: single increments, then IncN block grants of the same budget",
		Params: []ParamInfo{
			{Name: "batch", Default: "64", Doc: "block-grant size for the batched phase"},
		},
		Phases: func(base Workload, o Options) ([]Phase, error) {
			batch := o.Int("batch", 64)
			if err := o.Err(); err != nil {
				return nil, err
			}
			if batch < 2 {
				return nil, fmt.Errorf("batch %d must be ≥ 2", batch)
			}
			single := basePhase(base, "single")
			single.Batch = 0
			batched := basePhase(base, fmt.Sprintf("batch=%d", batch))
			batched.Batch = batch
			return assignBudgets(base, []Phase{single, batched}, []float64{1, 1})
		},
	})
}

// basePhase seeds a phase with the base workload's shape; scenarios
// override fields and assignBudgets divides the budget.
func basePhase(base Workload, name string) Phase {
	return Phase{
		Name:          name,
		Goroutines:    base.Goroutines,
		Mix:           base.Mix,
		Batch:         base.Batch,
		Inflight:      base.Inflight,
		LatencySample: base.LatencySample,
		Arrival:       base.Arrival,
	}
}

// assignBudgets divides the base workload's budget across phases in
// proportion to weights. An ops budget is split exactly (largest-remainder,
// every phase ≥ 1 op); a duration budget is split proportionally with a
// 1ns floor. The base must carry enough budget to give every phase a
// share — a 5-op budget cannot run a 6-phase scenario and says so.
func assignBudgets(base Workload, phases []Phase, weights []float64) ([]Phase, error) {
	if len(phases) != len(weights) {
		return nil, fmt.Errorf("%d phases but %d weights", len(phases), len(weights))
	}
	var total float64
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("non-positive phase weight %v", w)
		}
		total += w
	}
	if base.Duration > 0 {
		for i := range phases {
			d := time.Duration(float64(base.Duration) * weights[i] / total)
			if d < 1 {
				d = 1
			}
			phases[i].Duration, phases[i].Ops = d, 0
		}
		return phases, nil
	}
	if base.Ops < len(phases) {
		return nil, fmt.Errorf("ops budget %d cannot cover %d phases", base.Ops, len(phases))
	}
	ops := splitOps(base.Ops, weights, total)
	for i := range phases {
		phases[i].Ops, phases[i].Duration = ops[i], 0
	}
	return phases, nil
}

// splitOps divides total operations across weights (whose sum is wsum)
// by largest remainder: floors first, then hand the leftover ops to the
// shares with the biggest fractional parts, then guarantee every share at
// least one op by taking from the largest. The caller has already checked
// total ≥ len(weights) and every weight positive.
func splitOps(total int, weights []float64, wsum float64) []int {
	ops := make([]int, len(weights))
	rem := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / wsum
		ops[i] = int(exact)
		rem[i] = exact - float64(ops[i])
		assigned += ops[i]
	}
	for assigned < total {
		best := 0
		for i := range rem {
			if rem[i] > rem[best] {
				best = i
			}
		}
		ops[best]++
		rem[best] = -1
		assigned++
	}
	for i := range ops {
		for ops[i] == 0 {
			big := 0
			for j := range ops {
				if ops[j] > ops[big] {
					big = j
				}
			}
			ops[big]--
			ops[i]++
		}
	}
	return ops
}
