package countq

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phase is one segment of a phased run: a fully resolved workload shape
// (goroutines, mix, arrival, batching, sampling) plus its own slice of the
// run's budget. The structures, their accumulated state, and the seed come
// from the base Workload and persist across phases — a phase reshapes the
// load, it never swaps the structure under test. Scenario expansion
// produces phases; Workload.Scenario is the usual way to run them.
type Phase struct {
	// Name labels the phase in metrics ("warmup", "g=4", "mix=0.75").
	// Names must be non-empty and distinct within a scenario.
	Name string
	// Warmup phases run (and their operations are validated) but are
	// excluded from the run's aggregate metrics.
	Warmup bool
	// Goroutines is the phase's worker count (0 inherits the base).
	Goroutines int
	// Ops and Duration are the phase's budget: exactly one must be
	// positive (a positive Duration wins, as on Workload).
	Ops      int
	Duration time.Duration
	// Mix, Batch, Inflight, LatencySample and Arrival mean what they mean
	// on Workload, per phase. Mix is forced to 1/0 for pure workloads;
	// Inflight and LatencySample 0 inherit the base.
	Mix           float64
	Batch         int
	Inflight      int
	LatencySample int
	Arrival       Arrival
}

// ScenarioInfo describes one registered scenario: a named, parameterized
// recipe that expands a base workload into a sequence of phases. Scenarios
// self-register like structures (registry v2): declared params, unknown
// keys rejected, `countq scenarios -v` self-documents the catalogue.
type ScenarioInfo struct {
	// Name is the registry key (e.g. "ramp").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Params declares every parameter the scenario accepts. Spec keys
	// outside this set are rejected before Phases runs.
	Params []ParamInfo
	// Phases expands the scenario against a base workload whose defaults
	// (goroutine count, op budget, sampling) have been resolved. It
	// derives each phase from the base shape and divides the base budget;
	// typed-getter errors on o must be surfaced (o.Err()).
	Phases func(base Workload, o Options) ([]Phase, error)
}

var scenarios = make(map[string]ScenarioInfo)

// RegisterScenario records a scenario under info.Name. It is intended to
// be called from package init functions; registering an empty name, a nil
// expansion, malformed params, or a name twice panics.
func RegisterScenario(info ScenarioInfo) {
	regMu.Lock()
	defer regMu.Unlock()
	checkInfo("Scenario", info.Name, info.Phases != nil, info.Params)
	if _, dup := scenarios[info.Name]; dup {
		panic(fmt.Sprintf("countq: scenario %q registered twice", info.Name))
	}
	scenarios[info.Name] = info
}

// Scenarios returns every registered scenario, sorted by name.
func Scenarios() []ScenarioInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]ScenarioInfo, 0, len(scenarios))
	for _, info := range scenarios {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string {
	infos := Scenarios()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// Scenario is an expanded scenario: the canonical spec it came from and
// the concrete phases it will run against the base workload it was
// expanded for.
type Scenario struct {
	Name   string
	Spec   string // canonical parseable form
	Phases []Phase
}

// ExpandScenario parses a scenario spec ("ramp", "ramp?gmax=16", or a
// ';'-separated composition like "ramp?gmax=8;spike"), resolves the base
// workload's defaults, and expands the scenario into its phases. The
// expansion is validated structurally — at least one phase, distinct
// non-empty names across the whole expansion, at least one measured
// (non-warmup) phase — and the per-phase workload shapes are validated
// again by Run. See Compose for the composition semantics (per-segment
// weight and warmup, duration-weighted budget splits).
func ExpandScenario(spec string, base Workload) (*Scenario, error) {
	if strings.Contains(spec, ";") {
		return expandComposition(spec, base.withDefaults())
	}
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	phases, err := expandOne(s, base.withDefaults())
	if err != nil {
		return nil, err
	}
	if err := validatePhases(fmt.Sprintf("scenario %q", s.Name), phases); err != nil {
		return nil, err
	}
	return &Scenario{Name: s.Name, Spec: s.String(), Phases: phases}, nil
}

// expandOne resolves one already-parsed scenario spec against a resolved
// base workload and runs its registered expansion. It validates the
// segment-local invariants (known scenario, declared params, at least one
// phase, non-empty phase names); the cross-expansion checks — distinct
// names, at least one measured phase — are the caller's, so a composition
// can apply them across all of its segments at once.
func expandOne(s Spec, base Workload) ([]Phase, error) {
	regMu.RLock()
	info, ok := scenarios[s.Name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("countq: unknown scenario %q (registered: %v)", s.Name, ScenarioNames())
	}
	if err := checkParams("scenario", s.Name, s.Options, info.Params); err != nil {
		return nil, err
	}
	phases, err := info.Phases(base, s.Options)
	if err != nil {
		return nil, fmt.Errorf("countq: scenario %q: %w", s.Name, err)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("countq: scenario %q expanded to no phases", s.Name)
	}
	for _, p := range phases {
		if p.Name == "" {
			return nil, fmt.Errorf("countq: scenario %q has a phase with no name", s.Name)
		}
	}
	return phases, nil
}

// validatePhases applies the whole-expansion structural checks: phase
// names distinct across the full sequence and at least one measured
// (non-warmup) phase.
func validatePhases(what string, phases []Phase) error {
	seen := make(map[string]bool, len(phases))
	measured := 0
	for _, p := range phases {
		if seen[p.Name] {
			return fmt.Errorf("countq: %s names phase %q twice", what, p.Name)
		}
		seen[p.Name] = true
		if !p.Warmup {
			measured++
		}
	}
	if measured == 0 {
		return fmt.Errorf("countq: %s has no measured (non-warmup) phase", what)
	}
	return nil
}
