package countq

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Scenario composition: a ';'-separated scenario spec sequences registered
// scenarios into one phased run — "ramp?gmax=8;spike" runs the ramp's
// phases, then the spike's, over the same structure instances and budget.
// Each segment is an ordinary scenario spec plus two reserved parameters
// the composition layer consumes before the scenario sees its options:
//
//   - weight: the segment's share of the base budget (positive, default 1;
//     an ops budget splits by largest remainder, a duration budget splits
//     proportionally) — duration-weighted sequencing in spec form.
//   - warmup: "true" marks every phase of the segment as warmup — run and
//     validated, excluded from the aggregate ("ramp?warmup=true;spike"
//     uses the whole ramp to heat the structure before measuring).
//
// A scenario that declares one of these names itself keeps its own meaning
// (steady's warmup fraction, for instance); the reserved reading applies
// only to parameters the scenario does not declare.
//
// The whole composition is validated at expansion time: no empty segments,
// phase names distinct across all segments (compose "ramp;ramp" and the
// second ramp's g=1 collides — rename via different params or scenarios),
// and at least one measured phase across the composition.

// Composition builds a multi-segment scenario spec programmatically — the
// combinator form of the ';' syntax. It is an immutable value: Then
// returns a new Composition, so a base can fan out into variants.
//
//	spec := countq.Compose("ramp?gmax=8").Then("spike?weight=2").String()
//	// "ramp?gmax=8;spike?weight=2"
type Composition struct{ spec string }

// Compose starts a composition from one scenario segment spec.
func Compose(spec string) Composition { return Composition{spec: spec} }

// Then appends a segment to the composition and returns the result.
func (c Composition) Then(spec string) Composition {
	return Composition{spec: c.spec + ";" + spec}
}

// String returns the composed scenario spec, ready for Workload.Scenario
// or ExpandScenario. Validation happens at expansion time.
func (c Composition) String() string { return c.spec }

// Expand expands the composition against a base workload, exactly as
// ExpandScenario would expand the equivalent spec string.
func (c Composition) Expand(base Workload) (*Scenario, error) {
	return ExpandScenario(c.spec, base)
}

// Segments parses a (possibly composed) scenario spec into its per-segment
// Specs, reserved keys stripped — the inspection surface callers use to
// reason about a composition without expanding it (the CLI rejects a sweep
// whose parameter a segment shadows this way). A spec without ';' returns
// a single segment.
func Segments(spec string) ([]Spec, error) {
	if !strings.Contains(spec, ";") {
		s, err := ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		return []Spec{s}, nil
	}
	segs, err := parseSegments(spec)
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, len(segs))
	for i, g := range segs {
		specs[i] = g.spec
	}
	return specs, nil
}

// segment is one parsed composition segment: the scenario spec with the
// reserved keys stripped, plus the consumed weight and warmup markers.
type segment struct {
	spec   Spec
	weight float64
	warmup bool
}

// canonical renders the segment in its canonical spec form, reserved keys
// included (weight omitted at its default of 1, warmup omitted when false).
func (g segment) canonical() string {
	s := g.spec
	if g.weight != 1 {
		s = s.With("weight", strconv.FormatFloat(g.weight, 'g', -1, 64))
	}
	if g.warmup {
		s = s.With("warmup", "true")
	}
	return s.String()
}

// parseSegments splits a composed scenario spec into its segments,
// resolving each against the scenario registry and consuming the reserved
// parameters. Unknown scenarios and undeclared parameters fail here, before
// any budget is split.
func parseSegments(spec string) ([]segment, error) {
	parts := strings.Split(spec, ";")
	segs := make([]segment, 0, len(parts))
	for i, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("countq: composition %q: segment %d is empty", spec, i+1)
		}
		sp, err := ParseSpec(part)
		if err != nil {
			return nil, fmt.Errorf("countq: composition %q: segment %d: %w", spec, i+1, err)
		}
		regMu.RLock()
		info, ok := scenarios[sp.Name]
		regMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("countq: composition %q: unknown scenario %q (registered: %v)", spec, sp.Name, ScenarioNames())
		}
		seg := segment{weight: 1}
		declared := make(map[string]bool, len(info.Params))
		for _, p := range info.Params {
			declared[p.Name] = true
		}
		// Reserved keys the scenario does not declare itself are consumed
		// here; everything else passes through to the scenario's own
		// parameter validation at expansion.
		kept := Spec{Name: sp.Name}
		for _, k := range sp.Options.Keys() {
			v, _ := sp.Options.Lookup(k)
			switch {
			case k == "weight" && !declared[k]:
				w, err := strconv.ParseFloat(v, 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("countq: composition %q: segment %d: weight %q is not a positive number", spec, i+1, v)
				}
				seg.weight = w
			case k == "warmup" && !declared[k]:
				b, err := strconv.ParseBool(v)
				if err != nil {
					return nil, fmt.Errorf("countq: composition %q: segment %d: warmup %q is not a boolean", spec, i+1, v)
				}
				seg.warmup = b
			default:
				kept.Options.Set(k, v)
			}
		}
		seg.spec = kept
		segs = append(segs, seg)
	}
	return segs, nil
}

// expandComposition expands a ';'-separated scenario spec against a
// resolved base workload: the base budget is split across segments in
// proportion to their weights, each segment expands against its share, and
// the concatenated phase sequence is validated as a whole (distinct names,
// at least one measured phase across the composition).
func expandComposition(spec string, base Workload) (*Scenario, error) {
	segs, err := parseSegments(spec)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(segs))
	var wsum float64
	for i, g := range segs {
		weights[i] = g.weight
		wsum += g.weight
	}
	var shares []int
	if base.Duration <= 0 {
		if base.Ops < len(segs) {
			return nil, fmt.Errorf("countq: composition %q: ops budget %d cannot cover %d segments", spec, base.Ops, len(segs))
		}
		shares = splitOps(base.Ops, weights, wsum)
	}
	var phases []Phase
	names := make([]string, len(segs))
	canon := make([]string, len(segs))
	for i, g := range segs {
		sub := base
		if base.Duration > 0 {
			d := time.Duration(float64(base.Duration) * g.weight / wsum)
			if d < 1 {
				d = 1
			}
			sub.Duration, sub.Ops = d, 0
		} else {
			sub.Ops = shares[i]
		}
		ps, err := expandOne(g.spec, sub)
		if err != nil {
			return nil, fmt.Errorf("countq: composition %q: segment %d: %w", spec, i+1, err)
		}
		if g.warmup {
			for j := range ps {
				ps[j].Warmup = true
			}
		}
		phases = append(phases, ps...)
		names[i] = g.spec.Name
		canon[i] = g.canonical()
	}
	if err := validatePhases(fmt.Sprintf("composition %q", spec), phases); err != nil {
		return nil, err
	}
	return &Scenario{
		Name:   strings.Join(names, ";"),
		Spec:   strings.Join(canon, ";"),
		Phases: phases,
	}, nil
}
