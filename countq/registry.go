package countq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// CounterInfo describes one registered counter implementation.
type CounterInfo struct {
	// Name is the registry key (e.g. "atomic", "sharded").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Linearizable records whether the implementation guarantees
	// real-time (linearizable) ordering of counts, as opposed to the
	// weaker quiescent consistency of counting networks and sharded
	// designs.
	Linearizable bool
	// Params declares every construction parameter the implementation
	// accepts. Spec keys outside this set are rejected before New runs.
	Params []ParamInfo
	// New constructs a fresh instance from the given options; the zero
	// Options means all defaults.
	New func(Options) (Counter, error)
}

// QueueInfo describes one registered queuer implementation.
type QueueInfo struct {
	// Name is the registry key (e.g. "swap").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Params declares every construction parameter the implementation
	// accepts. Spec keys outside this set are rejected before New runs.
	Params []ParamInfo
	// New constructs a fresh instance from the given options; the zero
	// Options means all defaults.
	New func(Options) (Queuer, error)
}

var (
	regMu    sync.RWMutex
	counters = make(map[string]CounterInfo)
	queues   = make(map[string]QueueInfo)
)

// checkInfo enforces the shared registration invariants: a non-empty name
// without spec metacharacters, a constructor, and distinct non-empty
// parameter names.
func checkInfo(kind, name string, hasNew bool, params []ParamInfo) {
	if name == "" || !hasNew {
		panic(fmt.Sprintf("countq: Register%s with empty name or nil constructor", kind))
	}
	if strings.ContainsAny(name, "?&=;") {
		panic(fmt.Sprintf("countq: %s name %q contains a spec metacharacter", kind, name))
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if p.Name == "" {
			panic(fmt.Sprintf("countq: %s %q declares a param with no name", kind, name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("countq: %s %q declares param %q twice", kind, name, p.Name))
		}
		seen[p.Name] = true
	}
}

// RegisterCounter records a counter constructor under info.Name. It is
// intended to be called from package init functions; registering an empty
// name, a nil constructor, malformed params, or a name twice panics.
func RegisterCounter(info CounterInfo) {
	regMu.Lock()
	defer regMu.Unlock()
	checkInfo("Counter", info.Name, info.New != nil, info.Params)
	if _, dup := counters[info.Name]; dup {
		panic(fmt.Sprintf("countq: counter %q registered twice", info.Name))
	}
	counters[info.Name] = info
}

// RegisterQueue records a queuer constructor under info.Name. It is
// intended to be called from package init functions; registering an empty
// name, a nil constructor, malformed params, or a name twice panics.
func RegisterQueue(info QueueInfo) {
	regMu.Lock()
	defer regMu.Unlock()
	checkInfo("Queue", info.Name, info.New != nil, info.Params)
	if _, dup := queues[info.Name]; dup {
		panic(fmt.Sprintf("countq: queue %q registered twice", info.Name))
	}
	queues[info.Name] = info
}

// NewCounter constructs a fresh instance from a counter spec — a bare name
// ("sharded") or a parameterized form ("sharded?shards=64&batch=256").
// Unknown names report the registered alternatives; unknown or mistyped
// parameters report the declared set.
func NewCounter(spec string) (Counter, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewCounterFromSpec(s)
}

// NewCounterFromSpec is NewCounter for an already-parsed Spec, the form
// sweeps use to vary one parameter programmatically (see Spec.With).
func NewCounterFromSpec(s Spec) (Counter, error) {
	regMu.RLock()
	info, ok := counters[s.Name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("countq: unknown counter %q (registered: %v)", s.Name, CounterNames())
	}
	if err := checkParams("counter", s.Name, s.Options, info.Params); err != nil {
		return nil, err
	}
	return info.New(s.Options)
}

// NewQueue constructs a fresh instance from a queuer spec — a bare name or
// "name?param=value&…". Unknown names report the registered alternatives;
// unknown or mistyped parameters report the declared set.
func NewQueue(spec string) (Queuer, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewQueueFromSpec(s)
}

// NewQueueFromSpec is NewQueue for an already-parsed Spec.
func NewQueueFromSpec(s Spec) (Queuer, error) {
	regMu.RLock()
	info, ok := queues[s.Name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("countq: unknown queue %q (registered: %v)", s.Name, QueueNames())
	}
	if err := checkParams("queue", s.Name, s.Options, info.Params); err != nil {
		return nil, err
	}
	return info.New(s.Options)
}

// Counters returns every registered counter, sorted by name.
func Counters() []CounterInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]CounterInfo, 0, len(counters))
	for _, info := range counters {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Queues returns every registered queuer, sorted by name.
func Queues() []QueueInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]QueueInfo, 0, len(queues))
	for _, info := range queues {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterNames returns the registered counter names, sorted.
func CounterNames() []string {
	infos := Counters()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// QueueNames returns the registered queuer names, sorted.
func QueueNames() []string {
	infos := Queues()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}
