package countq

import (
	"fmt"
	"sort"
	"sync"
)

// CounterInfo describes one registered counter implementation.
type CounterInfo struct {
	// Name is the registry key (e.g. "atomic", "sharded").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Linearizable records whether the implementation guarantees
	// real-time (linearizable) ordering of counts, as opposed to the
	// weaker quiescent consistency of counting networks and sharded
	// designs.
	Linearizable bool
	// New constructs a fresh instance with sensible defaults.
	New func() (Counter, error)
}

// QueueInfo describes one registered queuer implementation.
type QueueInfo struct {
	// Name is the registry key (e.g. "swap").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// New constructs a fresh instance.
	New func() (Queuer, error)
}

var (
	regMu    sync.RWMutex
	counters = make(map[string]CounterInfo)
	queues   = make(map[string]QueueInfo)
)

// RegisterCounter records a counter constructor under info.Name. It is
// intended to be called from package init functions; registering an empty
// name, a nil constructor, or a name twice panics.
func RegisterCounter(info CounterInfo) {
	regMu.Lock()
	defer regMu.Unlock()
	if info.Name == "" || info.New == nil {
		panic("countq: RegisterCounter with empty name or nil constructor")
	}
	if _, dup := counters[info.Name]; dup {
		panic(fmt.Sprintf("countq: counter %q registered twice", info.Name))
	}
	counters[info.Name] = info
}

// RegisterQueue records a queuer constructor under info.Name. It is
// intended to be called from package init functions; registering an empty
// name, a nil constructor, or a name twice panics.
func RegisterQueue(info QueueInfo) {
	regMu.Lock()
	defer regMu.Unlock()
	if info.Name == "" || info.New == nil {
		panic("countq: RegisterQueue with empty name or nil constructor")
	}
	if _, dup := queues[info.Name]; dup {
		panic(fmt.Sprintf("countq: queue %q registered twice", info.Name))
	}
	queues[info.Name] = info
}

// NewCounter constructs a fresh instance of the named counter, or reports
// an error naming the registered alternatives.
func NewCounter(name string) (Counter, error) {
	regMu.RLock()
	info, ok := counters[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("countq: unknown counter %q (registered: %v)", name, CounterNames())
	}
	return info.New()
}

// NewQueue constructs a fresh instance of the named queuer, or reports an
// error naming the registered alternatives.
func NewQueue(name string) (Queuer, error) {
	regMu.RLock()
	info, ok := queues[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("countq: unknown queue %q (registered: %v)", name, QueueNames())
	}
	return info.New()
}

// Counters returns every registered counter, sorted by name.
func Counters() []CounterInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]CounterInfo, 0, len(counters))
	for _, info := range counters {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Queues returns every registered queuer, sorted by name.
func Queues() []QueueInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]QueueInfo, 0, len(queues))
	for _, info := range queues {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterNames returns the registered counter names, sorted.
func CounterNames() []string {
	infos := Counters()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// QueueNames returns the registered queuer names, sorted.
func QueueNames() []string {
	infos := Queues()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}
