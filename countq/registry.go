package countq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry v3: one StructureInfo per implementation, with declared kinds,
// parameters and session capabilities. Implementations register a
// Structure constructor (RegisterStructure); legacy Counter/Queuer
// implementations keep registering through RegisterCounter/RegisterQueue,
// which wrap them in the session adapters and probe their capability
// interfaces, so the whole pre-session zoo appears in the v3 registry
// unchanged. Names are shared across kinds the way the zoo already uses
// them ("mutex" the counter and "mutex" the queue coexist): lookups are
// always kind-qualified, and registering two structures of overlapping
// kind under one name panics.

// StructureInfo describes one registered structure implementation.
type StructureInfo struct {
	// Name is the registry key (e.g. "sharded", "sim-counter").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Kinds declares the operation kinds the structure's sessions serve.
	Kinds Kind
	// Linearizable records whether the implementation guarantees
	// real-time (linearizable) ordering, as opposed to the weaker
	// quiescent consistency of counting networks and sharded designs.
	Linearizable bool
	// Params declares every construction parameter the implementation
	// accepts. Spec keys outside this set are rejected before New runs.
	Params []ParamInfo
	// Caps declares the session capabilities (CapHandle, CapBatch,
	// CapAsync) the structure's sessions implement. The driver trusts the
	// declaration to validate workloads before running them.
	Caps Caps
	// New constructs a fresh instance from the given options; the zero
	// Options means all defaults.
	New func(Options) (Structure, error)

	// Legacy constructors, set by RegisterCounter/RegisterQueue: the
	// synchronous view NewCounter/NewQueue and the Counters()/Queues()
	// listings serve. Nil for native v3 structures (e.g. the sim bridge),
	// which have no synchronous call-and-return form.
	newCounter func(Options) (Counter, error)
	newQueue   func(Options) (Queuer, error)
}

var (
	regMu sync.RWMutex
	// structures maps a name to its registered entries — at most one per
	// kind, so the slice has 1 or 2 elements.
	structures = make(map[string][]StructureInfo)
)

// checkInfo enforces the shared registration invariants: a non-empty name
// without spec metacharacters, a constructor, and distinct non-empty
// parameter names.
func checkInfo(kind, name string, hasNew bool, params []ParamInfo) {
	if name == "" || !hasNew {
		panic(fmt.Sprintf("countq: Register%s with empty name or nil constructor", kind))
	}
	if strings.ContainsAny(name, "?&=;,@") {
		panic(fmt.Sprintf("countq: %s name %q contains a spec metacharacter", kind, name))
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if p.Name == "" {
			panic(fmt.Sprintf("countq: %s %q declares a param with no name", kind, name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("countq: %s %q declares param %q twice", kind, name, p.Name))
		}
		seen[p.Name] = true
	}
}

// RegisterStructure records a structure constructor under info.Name for
// the kinds it declares. It is intended to be called from package init
// functions; registering an empty name, a nil constructor, no kinds,
// malformed params, or an already-taken (name, kind) pair panics.
func RegisterStructure(info StructureInfo) {
	registerStructure("Structure", info)
}

// registerStructure is RegisterStructure with the panic-message label the
// legacy wrappers pass through ("Counter", "Queue").
func registerStructure(label string, info StructureInfo) {
	regMu.Lock()
	defer regMu.Unlock()
	checkInfo(label, info.Name, info.New != nil, info.Params)
	if info.Kinds&(KindCounter|KindQueue) == 0 {
		panic(fmt.Sprintf("countq: structure %q declares no operation kind", info.Name))
	}
	for _, prev := range structures[info.Name] {
		if prev.Kinds&info.Kinds != 0 {
			panic(fmt.Sprintf("countq: %s %q registered twice", strings.ToLower(label), info.Name))
		}
	}
	structures[info.Name] = append(structures[info.Name], info)
}

// RegisterCounter records a legacy counter constructor under info.Name,
// wrapped in the session adapter. Its HandleMaker and BatchIncrementer
// capability interfaces are probed on a throwaway default-construction and
// declared as session caps, so pre-session implementations register
// completely unchanged — which means a legacy constructor must build with
// zero Options (every declared param needs a default). One that cannot
// panics here rather than silently registering with no capabilities;
// such an implementation should use RegisterStructure with declared Caps
// instead. Registering an empty name, a nil constructor, malformed
// params, or a name twice also panics.
func RegisterCounter(info CounterInfo) {
	nc := info.New
	var caps Caps
	var newFn func(Options) (Structure, error)
	if nc != nil {
		c, err := nc(Options{})
		if err != nil {
			panic(fmt.Sprintf("countq: RegisterCounter(%q): default construction failed during the capability probe: %v (legacy constructors must build with zero Options; use RegisterStructure with declared Caps instead)", info.Name, err))
		}
		if _, ok := c.(HandleMaker); ok {
			caps |= CapHandle
		}
		if _, ok := c.(BatchIncrementer); ok {
			caps |= CapBatch
		}
		if cl, ok := c.(interface{ Close() error }); ok {
			cl.Close() // the probe instance is throwaway; release anything it holds
		}
		newFn = func(o Options) (Structure, error) {
			c, err := nc(o)
			if err != nil {
				return nil, err
			}
			return &counterStructure{c: c}, nil
		}
	}
	registerStructure("Counter", StructureInfo{
		Name:         info.Name,
		Summary:      info.Summary,
		Kinds:        KindCounter,
		Linearizable: info.Linearizable,
		Params:       info.Params,
		Caps:         caps,
		New:          newFn,
		newCounter:   nc,
	})
}

// RegisterQueue records a legacy queuer constructor under info.Name,
// wrapped in the session adapter. Registering an empty name, a nil
// constructor, malformed params, or a name twice panics.
func RegisterQueue(info QueueInfo) {
	nq := info.New
	var newFn func(Options) (Structure, error)
	if nq != nil {
		newFn = func(o Options) (Structure, error) {
			q, err := nq(o)
			if err != nil {
				return nil, err
			}
			return &queueStructure{q: q}, nil
		}
	}
	registerStructure("Queue", StructureInfo{
		Name:     info.Name,
		Summary:  info.Summary,
		Kinds:    KindQueue,
		Params:   info.Params,
		New:      newFn,
		newQueue: nq,
	})
}

// CounterInfo describes one registered legacy counter implementation. It
// remains the registration surface for synchronous shared-memory counters;
// RegisterCounter lifts it into the structure registry.
type CounterInfo struct {
	// Name is the registry key (e.g. "atomic", "sharded").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Linearizable records whether the implementation guarantees
	// real-time (linearizable) ordering of counts, as opposed to the
	// weaker quiescent consistency of counting networks and sharded
	// designs.
	Linearizable bool
	// Params declares every construction parameter the implementation
	// accepts. Spec keys outside this set are rejected before New runs.
	Params []ParamInfo
	// New constructs a fresh instance from the given options; the zero
	// Options means all defaults.
	New func(Options) (Counter, error)
}

// QueueInfo describes one registered legacy queuer implementation.
type QueueInfo struct {
	// Name is the registry key (e.g. "swap").
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Params declares every construction parameter the implementation
	// accepts. Spec keys outside this set are rejected before New runs.
	Params []ParamInfo
	// New constructs a fresh instance from the given options; the zero
	// Options means all defaults.
	New func(Options) (Queuer, error)
}

// lookupStructure finds the registered entry serving kind under name.
func lookupStructure(name string, kind Kind) (StructureInfo, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, info := range structures[name] {
		if info.Kinds.Has(kind) {
			return info, true
		}
	}
	return StructureInfo{}, false
}

// LookupStructure reports the registered structure serving kind under
// name, and whether one exists.
func LookupStructure(name string, kind Kind) (StructureInfo, bool) {
	return lookupStructure(name, kind)
}

// NewStructure constructs a fresh structure from a spec — a bare name
// ("sharded") or a parameterized form ("sim-counter?hoplat=1us") — for the
// given operation kind. The kind disambiguates names registered on both
// sides (e.g. "mutex"). Unknown names report the registered alternatives
// of that kind; unknown or mistyped parameters report the declared set.
func NewStructure(spec string, kind Kind) (Structure, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewStructureFromSpec(s, kind)
}

// NewStructureFromSpec is NewStructure for an already-parsed Spec.
func NewStructureFromSpec(s Spec, kind Kind) (Structure, error) {
	st, _, err := newStructureFromSpec(s, kind)
	return st, err
}

// newStructureFromSpec constructs the structure and returns its registry
// info alongside — the form the driver uses to validate a workload against
// the declared capabilities.
func newStructureFromSpec(s Spec, kind Kind) (Structure, StructureInfo, error) {
	info, ok := lookupStructure(s.Name, kind)
	if !ok {
		return nil, StructureInfo{}, fmt.Errorf("countq: unknown %v %q (registered: %v)", kind, s.Name, structureNames(kind))
	}
	if err := checkParams(kind.String(), s.Name, s.Options, info.Params); err != nil {
		return nil, StructureInfo{}, err
	}
	st, err := info.New(s.Options)
	if err != nil {
		return nil, StructureInfo{}, err
	}
	return st, info, nil
}

// NewCounter constructs a fresh legacy Counter from a counter spec — a
// bare name ("sharded") or a parameterized form
// ("sharded?shards=64&batch=256"). It is the synchronous compatibility
// view of the structure registry: structures registered via
// RegisterCounter construct exactly as before, while native session
// structures (whose coordination round is asynchronous, like the sim
// bridge) have no synchronous form and are reported as such — drive those
// through NewStructure and sessions, or the workload driver.
func NewCounter(spec string) (Counter, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewCounterFromSpec(s)
}

// NewCounterFromSpec is NewCounter for an already-parsed Spec, the form
// sweeps use to vary one parameter programmatically (see Spec.With).
func NewCounterFromSpec(s Spec) (Counter, error) {
	info, ok := lookupStructure(s.Name, KindCounter)
	if !ok {
		return nil, fmt.Errorf("countq: unknown counter %q (registered: %v)", s.Name, CounterNames())
	}
	if info.newCounter == nil {
		return nil, fmt.Errorf("countq: structure %q has no synchronous Counter view; drive it through NewStructure(%q, KindCounter) and sessions", s.Name, s.Name)
	}
	if err := checkParams("counter", s.Name, s.Options, info.Params); err != nil {
		return nil, err
	}
	return info.newCounter(s.Options)
}

// NewQueue constructs a fresh legacy Queuer from a queuer spec — a bare
// name or "name?param=value&…" — the queue-side synchronous compatibility
// view (see NewCounter).
func NewQueue(spec string) (Queuer, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewQueueFromSpec(s)
}

// NewQueueFromSpec is NewQueue for an already-parsed Spec.
func NewQueueFromSpec(s Spec) (Queuer, error) {
	info, ok := lookupStructure(s.Name, KindQueue)
	if !ok {
		return nil, fmt.Errorf("countq: unknown queue %q (registered: %v)", s.Name, QueueNames())
	}
	if info.newQueue == nil {
		return nil, fmt.Errorf("countq: structure %q has no synchronous Queuer view; drive it through NewStructure(%q, KindQueue) and sessions", s.Name, s.Name)
	}
	if err := checkParams("queue", s.Name, s.Options, info.Params); err != nil {
		return nil, err
	}
	return info.newQueue(s.Options)
}

// Structures returns every registered structure, sorted by name (entries
// sharing a name sort counter before queue).
func Structures() []StructureInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []StructureInfo
	for _, infos := range structures {
		out = append(out, infos...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kinds < out[j].Kinds
	})
	return out
}

// StructureNames returns the names of registered structures serving kind,
// sorted.
func structureNames(kind Kind) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	for name, infos := range structures {
		for _, info := range infos {
			if info.Kinds.Has(kind) {
				names = append(names, name)
				break
			}
		}
	}
	sort.Strings(names)
	return names
}

// StructureNames returns the registered structure names serving kind,
// sorted.
func StructureNames(kind Kind) []string { return structureNames(kind) }

// Counters returns every structure registered with a synchronous Counter
// view, as its legacy CounterInfo, sorted by name. Native session
// structures (no synchronous view) are not listed here — see Structures.
func Counters() []CounterInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []CounterInfo
	for _, infos := range structures {
		for _, info := range infos {
			if info.newCounter != nil {
				out = append(out, CounterInfo{
					Name:         info.Name,
					Summary:      info.Summary,
					Linearizable: info.Linearizable,
					Params:       info.Params,
					New:          info.newCounter,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Queues returns every structure registered with a synchronous Queuer
// view, as its legacy QueueInfo, sorted by name.
func Queues() []QueueInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []QueueInfo
	for _, infos := range structures {
		for _, info := range infos {
			if info.newQueue != nil {
				out = append(out, QueueInfo{
					Name:    info.Name,
					Summary: info.Summary,
					Params:  info.Params,
					New:     info.newQueue,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterNames returns the registered legacy counter names, sorted.
func CounterNames() []string {
	infos := Counters()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// QueueNames returns the registered legacy queuer names, sorted.
func QueueNames() []string {
	infos := Queues()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}
