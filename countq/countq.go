// Package countq is the public face of the repository's concurrent
// counting and queuing structures — the two sides of Busch & Tirthapura,
// "Concurrent counting is harder than queuing".
//
// It defines the Counter and Queuer interfaces, a spec-keyed registry of
// self-registering implementations (the shared-memory structures in
// internal/shm register themselves on import, in the manner of
// database/sql drivers), and a phased scenario engine that runs any
// registered counter/queuer pair under a chosen operation mix, arrival
// pattern, goroutine count and ops budget — as one steady phase, or as a
// named Scenario: a self-registering sequence of Phases that ramps
// goroutines, alternates arrival bursts, shifts the operation mix, or
// toggles batching while the structures persist. Scenarios compose with
// ';' (or the Compose/Then combinator), and the Campaign layer runs
// several structure specs under one scenario's byte-identical phase
// sequence, reporting per-structure Metrics plus deltas against a
// baseline. The paper's counting-versus-queuing contrast as one function
// call.
//
// Structures are constructed from specs: a bare registry name builds the
// structure at its declared defaults, and a DSN-style parameter list tunes
// the knobs that control its coordination cost. Every parameter is
// declared by the implementation (see CounterInfo.Params); unknown keys
// and mistyped values are rejected, never silently defaulted.
//
// Quickstart:
//
//	import (
//		"repro/countq"
//
//		_ "repro/internal/shm" // register the shared-memory implementations
//	)
//
//	c, err := countq.NewCounter("sharded?shards=4&batch=16")
//	q, err := countq.NewQueue("swap")
//
//	m, err := countq.Run(countq.Workload{
//		Counter:    "sharded?shards=4&batch=16",
//		Queue:      "swap",
//		Scenario:   "ramp?gmax=8", // phased: contention doubles 1 → 8
//		Goroutines: 8,
//		Ops:        100000,
//		Mix:        0.5,
//	})
//
// Run reports structured Metrics rather than a flat average: per-phase
// and aggregate latency histograms with p50/p90/p99/p999/max per op kind,
// a windowed throughput timeline, and per-worker op counts with the
// fairness ratio they imply — because quiescently consistent counters
// look fine on means and give themselves away in the tail. Memory is a
// metric of the same rank: every phase reports heap allocations and
// bytes per operation (AllocsPerOp, AllocBytesPerOp) plus a live-heap
// peak timeline (MemTimeline, LivePeakBytes) on the same 16-window clock
// as the throughput timeline. The driver itself measures from outside
// the allocator — workers preallocate their evidence logs and claim op
// budget in chunks before the phase barrier, so the steady-state loops
// run at zero allocations per op (gated by testing.AllocsPerRun in CI)
// and the reported numbers belong to the structure under test, not to
// the harness.
//
// Counters may additionally implement two capability interfaces the
// driver exploits when present: HandleMaker (per-goroutine handles with an
// uncontended fast path) and BatchIncrementer (IncN block grants — a whole
// range of counts for one coordination round).
//
// Every run is validated: counts — including IncN block grants — must form
// a gap-free set of distinct values and predecessors must chain into a
// single total order.
package countq

import (
	"fmt"
	"math"
	"sort"
)

// Counter hands out distinct counts 1, 2, 3, … to concurrent callers.
type Counter interface {
	// Inc returns the next count (1-based). Safe for concurrent use.
	Inc() int64
}

// Head is the predecessor reported to the first enqueued operation.
const Head int64 = -1

// Queuer organizes concurrent operations into a total order, telling each
// caller the identity of its predecessor — the shared-memory face of
// distributed queuing. Operation ids must be distinct and non-negative.
type Queuer interface {
	// Enqueue appends id to the total order and returns the identity of
	// its predecessor (Head for the first operation).
	Enqueue(id int64) int64
}

// Drainer is implemented by counters that lease count ranges to internal
// shards (e.g. the sharded counter). Drain reclaims every leased-but-unused
// count, so that the counts handed out so far plus the drained remainder
// form the gap-free range 1..max. Validation harnesses call it before
// checking the no-gaps property; callers may also use it as a periodic
// reconciliation point.
type Drainer interface {
	Drain() []int64
}

// CounterHandle is a per-goroutine session with a counter: Inc hands out
// counts on a fast path that may hold private state (such as an unused
// lease remainder), and Close surrenders that state back to the shared
// structure so a subsequent Drain accounts for every leased count. A
// handle is owned by one goroutine and is not safe for concurrent use;
// the counter it came from remains safe for concurrent use alongside it.
type CounterHandle interface {
	Inc() int64
	Close()
}

// HandleMaker is implemented by counters whose uncontended fast path lives
// in per-goroutine handles (e.g. the sharded counter's per-worker lease).
// The workload driver gives each worker its own handle when the interface
// is present, and closes it when the worker finishes.
type HandleMaker interface {
	NewHandle() CounterHandle
}

// BatchIncrementer is implemented by counters that can grant a block of
// counts in one coordination round — the batching escape hatch the paper's
// per-operation lower bound does not price. The workload driver uses it
// when Workload.Batch > 1, and ValidateCountRanges extends the gap-free
// check to block grants.
type BatchIncrementer interface {
	// IncN atomically grants the n consecutive counts
	// first, first+1, …, first+n-1 and returns first. n must be ≥ 1;
	// IncN(1) is equivalent to Inc.
	IncN(n int64) (first int64)
}

// CountRange records one IncN block grant: the counts
// First, First+1, …, First+N-1.
type CountRange struct {
	First int64 `json:"first"`
	N     int64 `json:"n"`
}

// ValidateCounts checks that values is a permutation of 1..len(values) —
// the counting correctness condition (distinct counts, no gaps).
func ValidateCounts(values []int64) error {
	return ValidateCountRanges(values, nil)
}

// ValidateCountRanges checks the counting correctness condition over
// singly granted counts plus IncN block grants: together they must tile
// 1..total exactly, where total = len(values) + Σ blocks[i].N — every
// count distinct, no gaps, blocks fully accounted. It runs in
// O(k log k) time and O(k) space in the number of grants, never sizing
// anything by the claimed totals, so malformed input from a buggy
// implementation yields an error rather than an allocation failure.
func ValidateCountRanges(values []int64, blocks []CountRange) error {
	total := int64(len(values))
	type span struct{ lo, hi int64 } // counts [lo, hi)
	spans := make([]span, 0, len(values)+len(blocks))
	for _, v := range values {
		if v == math.MaxInt64 {
			return fmt.Errorf("countq: count %d overflows", v)
		}
		spans = append(spans, span{v, v + 1})
	}
	for _, b := range blocks {
		if b.N < 1 {
			return fmt.Errorf("countq: block grant of %d counts (want ≥ 1)", b.N)
		}
		if b.First > math.MaxInt64-b.N || b.N > math.MaxInt64-total {
			return fmt.Errorf("countq: block [%d,+%d) overflows", b.First, b.N)
		}
		total += b.N
		spans = append(spans, span{b.First, b.First + b.N})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	next := int64(1) // lowest count not yet accounted for
	for _, s := range spans {
		switch {
		case s.lo < 1 || s.lo > total:
			return fmt.Errorf("countq: count %d outside 1..%d", s.lo, total)
		case s.lo < next:
			return fmt.Errorf("countq: count %d duplicated", s.lo)
		case s.lo > next:
			return fmt.Errorf("countq: count %d missing (gap before %d)", next, s.lo)
		}
		next = s.hi
	}
	return nil
}

// ValidateOrder checks the queuing correctness condition on a set of
// (id, predecessor) pairs: predecessors are distinct, exactly one operation
// queued behind Head, and the successor chain covers every operation.
func ValidateOrder(ids, preds []int64) error {
	if len(ids) != len(preds) {
		return fmt.Errorf("countq: %d ids but %d preds", len(ids), len(preds))
	}
	idSet := make(map[int64]bool, len(ids))
	succ := make(map[int64]int64, len(ids))
	for i, id := range ids {
		// Distinct ids also guarantee the chain walk below terminates:
		// with one (id, pred) pair per id, no id can be reached twice.
		if idSet[id] {
			return fmt.Errorf("countq: operation id %d duplicated", id)
		}
		idSet[id] = true
		p := preds[i]
		if _, dup := succ[p]; dup {
			return fmt.Errorf("countq: predecessor %d claimed twice", p)
		}
		succ[p] = id
	}
	count := 0
	cur, ok := succ[Head]
	for ok {
		count++
		cur, ok = succ[cur]
	}
	if count != len(ids) {
		return fmt.Errorf("countq: chain covers %d of %d operations", count, len(ids))
	}
	return nil
}
