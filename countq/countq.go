// Package countq is the public face of the repository's concurrent
// counting and queuing structures — the two sides of Busch & Tirthapura,
// "Concurrent counting is harder than queuing".
//
// It defines the Counter and Queuer interfaces, a string-keyed registry of
// self-registering implementations (the shared-memory structures in
// internal/shm register themselves on import, in the manner of
// database/sql drivers), and a configurable mixed-workload driver that
// runs any registered counter/queuer pair under a chosen operation mix,
// arrival pattern, goroutine count and ops budget — the paper's
// counting-versus-queuing contrast as one function call.
//
// Quickstart:
//
//	import (
//		"repro/countq"
//
//		_ "repro/internal/shm" // register the shared-memory implementations
//	)
//
//	c, err := countq.NewCounter("sharded")
//	q, err := countq.NewQueue("swap")
//
//	res, err := countq.Run(countq.Workload{
//		Counter:     "sharded",
//		Queue:       "swap",
//		Goroutines:  8,
//		Ops:         100000,
//		CounterFrac: 0.5,
//		Arrival:     countq.Bursty,
//	})
//
// Every run is validated: counts must form a gap-free set of distinct
// values and predecessors must chain into a single total order.
package countq

import "fmt"

// Counter hands out distinct counts 1, 2, 3, … to concurrent callers.
type Counter interface {
	// Inc returns the next count (1-based). Safe for concurrent use.
	Inc() int64
}

// Head is the predecessor reported to the first enqueued operation.
const Head int64 = -1

// Queuer organizes concurrent operations into a total order, telling each
// caller the identity of its predecessor — the shared-memory face of
// distributed queuing. Operation ids must be distinct and non-negative.
type Queuer interface {
	// Enqueue appends id to the total order and returns the identity of
	// its predecessor (Head for the first operation).
	Enqueue(id int64) int64
}

// Drainer is implemented by counters that lease count ranges to internal
// shards (e.g. the sharded counter). Drain reclaims every leased-but-unused
// count, so that the counts handed out so far plus the drained remainder
// form the gap-free range 1..max. Validation harnesses call it before
// checking the no-gaps property; callers may also use it as a periodic
// reconciliation point.
type Drainer interface {
	Drain() []int64
}

// ValidateCounts checks that values is a permutation of 1..len(values) —
// the counting correctness condition (distinct counts, no gaps).
func ValidateCounts(values []int64) error {
	n := len(values)
	seen := make([]bool, n+1)
	for _, v := range values {
		if v < 1 || v > int64(n) {
			return fmt.Errorf("countq: count %d outside 1..%d", v, n)
		}
		if seen[v] {
			return fmt.Errorf("countq: count %d duplicated", v)
		}
		seen[v] = true
	}
	return nil
}

// ValidateOrder checks the queuing correctness condition on a set of
// (id, predecessor) pairs: predecessors are distinct, exactly one operation
// queued behind Head, and the successor chain covers every operation.
func ValidateOrder(ids, preds []int64) error {
	if len(ids) != len(preds) {
		return fmt.Errorf("countq: %d ids but %d preds", len(ids), len(preds))
	}
	idSet := make(map[int64]bool, len(ids))
	succ := make(map[int64]int64, len(ids))
	for i, id := range ids {
		// Distinct ids also guarantee the chain walk below terminates:
		// with one (id, pred) pair per id, no id can be reached twice.
		if idSet[id] {
			return fmt.Errorf("countq: operation id %d duplicated", id)
		}
		idSet[id] = true
		p := preds[i]
		if _, dup := succ[p]; dup {
			return fmt.Errorf("countq: predecessor %d claimed twice", p)
		}
		succ[p] = id
	}
	count := 0
	cur, ok := succ[Head]
	for ok {
		count++
		cur, ok = succ[cur]
	}
	if count != len(ids) {
		return fmt.Errorf("countq: chain covers %d of %d operations", count, len(ids))
	}
	return nil
}
